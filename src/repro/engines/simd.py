"""The NumPy word-packed SIMD engine: fully vectorised batched passes.

The bit-plane engine (:mod:`repro.engines.bitplane`) vectorises the
*encode* side of a batch -- one Python big-int operation advances all B
sequences -- but delegates every error-carrying sequence to the packed
scalar decoder.  On sparse campaigns (one error per ~10^2 sequences)
that cost is negligible; on the dense-error workloads behind the
paper's headline figures (burst sweeps, droop storms, the multi-error
Fig. 10 curves) essentially *every* sequence pays the scalar path and
throughput collapses back toward per-sequence speed.

This engine keeps the entire pass vectorised with **no per-sequence
fallback at any error density**:

* batch state is a ``(num_chains, chain_length, num_words)`` ndarray of
  little-endian ``uint64`` words -- bit ``b`` of word ``w`` is batch
  sequence ``64 * w + b``, the word-packed transposition of the engine
  protocol's bit planes;
* parities and CRC signatures are GF(2) linear maps, evaluated as XOR
  folds over ndarray gathers using the shared matrices of
  :mod:`repro.codes.plane` (:func:`~repro.codes.plane.block_parity_matrix`
  / :func:`~repro.codes.plane.crc_stream_matrix`) -- no popcounts, no
  per-slice work;
* correcting blocks sharing one code are stacked on a leading *group*
  axis, so one kernel invocation decodes every Hamming block of the
  bank at once;
* correction itself is a vectorised syndrome -> systematic-position
  table lookup plus a masked XOR scatter (``np.bitwise_xor.at``) into
  the packed words; per-sequence Python work is limited to
  materialising the :class:`~repro.core.monitor.MonitorReport` objects
  the protocol requires, proportional to the number of *error events*,
  never the batch size.

The summary pass additionally carries a **sparse-delta fast path**
(:mod:`repro.engines.delta`): every registered code is GF(2)-linear
and the stored check words derive from the same replicated baseline,
so for sparse batches the whole replicate/encode/inject/decode/compare
chain collapses into O(#flips) LUT-XOR work over precomputed column
tables.  ``run_batch_summary(..., path="auto")`` picks the delta path
whenever the batch's mean flips per sequence is at or below
:data:`~repro.engines.delta.DELTA_CROSSOVER_FLIPS_PER_SEQ` (and the
bank structure supports superposition), falling back to the dense word
pipeline above it; ``path="delta"`` / ``path="dense"`` force either
side, and the path actually taken is published as
``engine.last_summary_path``.  The two paths are bit-identical
(property-tested in ``tests/engines/test_delta_path.py``).

The array namespace is injected through
:mod:`repro.engines.backend` (the ``xp`` convention): the engine
resolves an :class:`~repro.engines.backend.ArrayBackend` at
construction (numpy by default, ``backend="cuda"`` when CuPy is
installed) and reuses per-engine :class:`~repro.engines.backend.\
Workspace` buffers for the dense summary pass's dominant arrays, so
steady-state equally-shaped batches stop allocating fresh state each
pass.

Bit-exactness with the reference engine is property-tested in
``tests/engines/test_simd_equivalence.py`` across all registered
codes, geometries, batch sizes and fault densities.  The engine
registers itself as ``"simd"`` only when numpy is importable (the
``[simd]`` extra); the core install stays pure Python.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.codes.crc import CRCCode
from repro.codes.hamming import HammingCode
from repro.codes.parity import ParityCode
from repro.codes.plane import block_parity_matrix, crc_stream_matrix
from repro.codes.secded import SECDEDCode
from repro.core.corrector import CorrectionEvent
from repro.core.monitor import MonitorBank, MonitorReport
from repro.engines.backend import Workspace, get_backend
from repro.engines.base import (
    BatchDecodeResult,
    BatchOutcomeArrays,
    EngineCapabilities,
    SimulationEngine,
)
from repro.engines.delta import (
    DELTA_CROSSOVER_FLIPS_PER_SEQ,
    build_plan,
    correction_lut,
    delta_summary,
)
from repro.engines.packing import (
    pack_chains,
    replicate_states,
    states_from_planes,
    write_back_chains,
)
from repro.engines.reporting import assemble_batch_result, clean_report_tuple
from repro.fastpath.engine import classify_monitors

if not np.little_endian:  # pragma: no cover - no big-endian CI targets
    raise ImportError(
        "repro.engines.simd packs batch words little-endian and has "
        "only been validated on little-endian platforms")

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)
_NO_FLIPS: Tuple[np.ndarray, np.ndarray] = (
    np.empty(0, dtype=np.int64), np.empty(0, dtype=np.uint64))


# ----------------------------------------------------------------------
# Plane <-> word-array boundary
# ----------------------------------------------------------------------
# The planes -> words packer is a generic array kernel shared with the
# bit-plane engine's summary pass, so its single implementation lives
# in repro.engines.summary; re-exported here because this module is the
# word layout's home.
from repro.engines.summary import planes_to_words  # noqa: E402


def words_to_planes(words: np.ndarray) -> List[List[int]]:
    """Unpack a ``(C, L, W)`` uint64 word array into protocol planes."""
    num_chains, length, num_words = words.shape
    nbytes = num_words * 8
    data = np.ascontiguousarray(words, dtype=np.uint64).tobytes()
    planes: List[List[int]] = []
    offset = 0
    for _chain in range(num_chains):
        chain_planes = []
        for _position in range(length):
            chain_planes.append(
                int.from_bytes(data[offset:offset + nbytes], "little"))
            offset += nbytes
        planes.append(chain_planes)
    return planes


def full_words(batch_size: int) -> np.ndarray:
    """The all-sequences mask as a ``(W,)`` word array."""
    num_words = (batch_size + 63) // 64
    mask = np.full(num_words, _ALL_ONES, dtype=np.uint64)
    if batch_size % 64:
        mask[-1] = np.uint64((1 << (batch_size % 64)) - 1)
    return mask


def _unpack_bits(words: np.ndarray, batch_size: int) -> np.ndarray:
    """Expand packed words ``(..., W)`` into per-sequence bits
    ``(..., B)`` (uint8 0/1)."""
    flat = np.ascontiguousarray(words, dtype=np.uint64)
    bits = np.unpackbits(flat.view(np.uint8), axis=-1, bitorder="little")
    return bits[..., :batch_size]


def _mask_ints(mask: np.ndarray) -> List[int]:
    """Per-row Python-int sequence masks of a ``(G, B)`` bool array."""
    packed = np.packbits(mask, axis=-1, bitorder="little")
    return [int.from_bytes(row.tobytes(), "little") for row in packed]


def _words_to_int(words: np.ndarray) -> int:
    """One ``(W,)`` word row as a Python-int sequence mask."""
    return int.from_bytes(
        np.ascontiguousarray(words, dtype=np.uint64).tobytes(), "little")


def _runs(group_idx: np.ndarray, seqs: np.ndarray):
    """Contiguous ``(g, b)`` runs of sorted nonzero coordinates.

    Yields ``(g, b, start, end)`` per distinct pair, assuming the
    arrays come from ``np.nonzero`` on a ``(G, B, ...)`` layout (so
    equal pairs are adjacent).
    """
    n = group_idx.size
    if not n:
        return
    change = (group_idx[1:] != group_idx[:-1]) | (seqs[1:] != seqs[:-1])
    starts = np.flatnonzero(change) + 1
    run_starts = np.concatenate(([0], starts))
    run_ends = np.concatenate((starts, [n]))
    yield from zip(group_idx[run_starts].tolist(),
                   seqs[run_starts].tolist(),
                   run_starts.tolist(), run_ends.tolist())


# ----------------------------------------------------------------------
# GF(2) kernels (one per structured code family)
# ----------------------------------------------------------------------
def _parity_words(rows: Sequence[np.ndarray], const: Sequence[int],
                  data: np.ndarray, full: np.ndarray) -> np.ndarray:
    """Evaluate GF(2) matrix rows over grouped data words.

    ``data`` is ``(G, k, L, W)``; the result is ``(G, r, L, W)`` with
    row ``j`` the XOR fold of the data rows listed in ``rows[j]`` (plus
    the all-sequences mask for rows with a constant 1).
    """
    shape = (data.shape[0], len(rows)) + data.shape[2:]
    out = np.zeros(shape, dtype=np.uint64)
    for j, row in enumerate(rows):
        if row.size == 1:
            out[:, j] = data[:, row[0]]
        elif row.size:
            out[:, j] = np.bitwise_xor.reduce(data[:, row], axis=1)
        if const[j]:
            out[:, j] ^= full
    return out


def _fold_syndrome(bits: np.ndarray) -> np.ndarray:
    """Collapse mismatch bit rows ``(G, r, L, B)`` into syndrome values
    ``(G, L, B)`` (mismatch of parity ``j`` sets syndrome bit ``j``,
    the convention of the packed decoders)."""
    syn = bits[:, 0].astype(np.uint16)
    for j in range(1, bits.shape[1]):
        syn |= bits[:, j].astype(np.uint16) << j
    return syn


class _HammingKernel:
    """Vectorised Hamming parity/decode over grouped word arrays.

    Decode reports, per (group, position, sequence), the systematic
    position the scalar decoder would flip: ``-1`` clean, ``-2``
    detected-uncorrectable, ``0..n-1`` otherwise.  The caller turns
    positions into flips, events and padding verdicts.
    """

    def __init__(self, code: HammingCode):
        matrix = block_parity_matrix(code)
        self.code = code
        self.k = code.k
        self.r = code.r
        self.rows = tuple(np.array(row, dtype=np.int64)
                          for row in matrix.rows)
        self.const = matrix.const
        # Shared process-wide (read-only) so sharded workers rebuilding
        # engines per chunk stop re-deriving it per instance.
        self.lut = correction_lut(code)

    def encode(self, data: np.ndarray, full: np.ndarray) -> np.ndarray:
        return _parity_words(self.rows, self.const, data, full)

    def decode(self, data: np.ndarray, stored: np.ndarray,
               full: np.ndarray, batch_size: int):
        diff = self.encode(data, full)
        np.bitwise_xor(diff, stored, out=diff)
        if not diff.any():
            return None
        syn = _fold_syndrome(_unpack_bits(diff, batch_size))
        return syn != 0, self.lut[syn]


class _SECDEDKernel:
    """Vectorised extended-Hamming (SECDED) parity/decode.

    Mirrors :meth:`repro.codes.packed.PackedSECDED.decode_slice`: the
    observed overall parity folds the received data word with the
    *stored* base parity bits, so the four case splits (clean / overall
    bit flipped / single corrected / double detected) are mask algebra
    over two unpacked planes.
    """

    def __init__(self, code: SECDEDCode):
        matrix = block_parity_matrix(code)
        self.code = code
        self.k = code.k
        self.n = code.n                  # extended length (base + 1)
        self.r = code.n - code.k         # base parity bits + overall bit
        self.base_r = self.r - 1
        self.rows = tuple(np.array(row, dtype=np.int64)
                          for row in matrix.rows)
        self.const = matrix.const
        # Shared process-wide (read-only), like the Hamming kernel's.
        self.lut = correction_lut(code)

    def encode(self, data: np.ndarray, full: np.ndarray) -> np.ndarray:
        return _parity_words(self.rows, self.const, data, full)

    def decode(self, data: np.ndarray, stored: np.ndarray,
               full: np.ndarray, batch_size: int):
        base_r = self.base_r
        fresh_base = _parity_words(self.rows[:base_r], self.const[:base_r],
                                   data, full)
        stored_base = stored[:, :base_r]
        diff = fresh_base ^ stored_base
        pm_plane = np.bitwise_xor.reduce(data, axis=1)
        pm_plane = pm_plane ^ np.bitwise_xor.reduce(stored_base, axis=1)
        pm_plane ^= stored[:, base_r]
        if not (diff.any() or pm_plane.any()):
            return None
        syn = _fold_syndrome(_unpack_bits(diff, batch_size))
        mismatch = _unpack_bits(pm_plane, batch_size).astype(bool)
        nonzero = syn != 0
        err = nonzero | mismatch
        pos = np.full(syn.shape, -2, dtype=np.int16)
        pos[~err] = -1
        # Overall parity bit itself flipped: corrected, data intact.
        pos[mismatch & ~nonzero] = self.n - 1
        single = mismatch & nonzero
        pos[single] = self.lut[syn[single]]
        return err, pos


class _ParityKernel:
    """Vectorised single-parity-bit detection (never corrects)."""

    def __init__(self, code: ParityCode):
        matrix = block_parity_matrix(code)
        self.code = code
        self.k = code.k
        self.r = 1
        self.rows = (np.array(matrix.rows[0], dtype=np.int64),)
        self.const = matrix.const

    def encode(self, data: np.ndarray, full: np.ndarray) -> np.ndarray:
        return _parity_words(self.rows, self.const, data, full)

    def decode(self, data: np.ndarray, stored: np.ndarray,
               full: np.ndarray, batch_size: int):
        diff = self.encode(data, full)
        np.bitwise_xor(diff, stored, out=diff)
        if not diff.any():
            return None
        err = _unpack_bits(diff[:, 0], batch_size).astype(bool)
        pos = np.where(err, np.int16(-2), np.int16(-1))
        return err, pos


def _make_kernel(code):
    if isinstance(code, SECDEDCode):
        return _SECDEDKernel(code)
    if type(code) is HammingCode:
        return _HammingKernel(code)
    if isinstance(code, ParityCode):
        return _ParityKernel(code)
    raise ValueError(
        f"engine 'simd' has no vectorised decoder for "
        f"{type(code).__name__}; use engine='batched' for adapter codes")


# ----------------------------------------------------------------------
# Monitor wrappers and code groups
# ----------------------------------------------------------------------
class _SimdBlockMonitor:
    """One correcting block's structure (the kernel lives on its group)."""

    def __init__(self, block):
        _make_kernel(block.code)  # fail fast on unsupported codes
        self.block = block
        self.code = block.code
        self.chain_indices = block.chain_indices
        self.chain_idx_arr = np.array(block.chain_indices, dtype=np.int64)
        self.width = block.width
        #: Per-pass XOR-scatter coordinates (for the overlap replay).
        self._flips: Tuple[np.ndarray, np.ndarray] = _NO_FLIPS


class _SimdStreamMonitor:
    """One detection-only (CRC) block's structure and stream matrix."""

    def __init__(self, block):
        if not isinstance(block.code, CRCCode):
            raise ValueError(
                f"engine 'simd' has no vectorised signature for "
                f"{type(block.code).__name__}; use engine='batched' for "
                f"adapter stream codes")
        self.block = block
        self.code = block.code
        self.chain_indices = block.chain_indices
        self.width = block.width
        # Filled by the engine once the chain length is known:
        self.rows_flat: Optional[List[np.ndarray]] = None
        self.const_idx: Optional[np.ndarray] = None
        #: Concatenated row indices + row offsets for one-shot
        #: gather + XOR-reduceat (None when a row is empty).
        self.gather_all: Optional[np.ndarray] = None
        self.offsets: Optional[np.ndarray] = None
        self.stored: Optional[np.ndarray] = None


class _BlockGroup:
    """All correcting monitors sharing one code, decoded in one shot."""

    def __init__(self, kernel, monitors: List[_SimdBlockMonitor]):
        self.kernel = kernel
        self.monitors = monitors
        k = kernel.k
        self.gather_idx = np.zeros((len(monitors), k), dtype=np.int64)
        pad = np.ones((len(monitors), k), dtype=bool)
        for g, monitor in enumerate(monitors):
            self.gather_idx[g, :monitor.width] = monitor.chain_idx_arr
            pad[g, :monitor.width] = False
        self.pad_mask = pad if pad.any() else None
        self.width = np.array([m.width for m in monitors], dtype=np.int16)
        self.stored: Optional[np.ndarray] = None


class SimdBatchedEngine(SimulationEngine):
    """NumPy word-packed simulation of B independent sequences per pass.

    Parameters
    ----------
    bank:
        The monitor bank whose structure (blocks, codes, chain
        assignments, report order) this engine mirrors.  Check words
        are stored inside the engine; the bank's blocks are untouched.
    num_chains, chain_length:
        Geometry of the chain set the passes run over.
    backend:
        Array-backend name resolved through
        :func:`repro.engines.backend.get_backend` (``None`` -> the
        default, numpy).  The resolved namespace is published as
        ``self.xp``; ``"cuda"`` exists whenever CuPy is installed.

    Raises ``ValueError`` at construction for codes without a
    structured GF(2) form (adapter-only codes) -- those run on the
    bit-plane engine instead.
    """

    capabilities = EngineCapabilities(batch=True, summary=True)

    #: Delta/dense auto-crossover in mean flips per sequence; override
    #: per instance to re-tune without forcing a path.
    delta_crossover = DELTA_CROSSOVER_FLIPS_PER_SEQ

    def __init__(self, bank: MonitorBank, num_chains: int,
                 chain_length: int, backend: Optional[str] = None):
        self._backend = get_backend(backend)
        self.xp = self._backend.xp
        self._workspace = Workspace(self.xp)
        self.num_chains = num_chains
        self.chain_length = chain_length
        (self._order, self._correcting, self._observing,
         self._overlapping_correctors) = classify_monitors(
            bank, _SimdBlockMonitor, _SimdStreamMonitor)
        groups: Dict[object, List[_SimdBlockMonitor]] = {}
        for monitor in self._correcting:
            groups.setdefault(monitor.code, []).append(monitor)
        self._groups = [
            _BlockGroup(_make_kernel(code), monitors)
            for code, monitors in groups.items()]
        for monitor in self._observing:
            matrix = crc_stream_matrix(monitor.code,
                                       chain_length * monitor.width)
            length = chain_length
            indices = monitor.chain_indices
            width = monitor.width
            monitor.rows_flat = [
                np.fromiter(
                    (indices[s % width] * length + (length - 1 - s // width)
                     for s in row),
                    dtype=np.int64, count=len(row))
                for row in matrix.rows]
            monitor.const_idx = np.flatnonzero(np.array(matrix.const,
                                                         dtype=np.uint8))
            if all(row.size for row in monitor.rows_flat):
                sizes = [row.size for row in monitor.rows_flat]
                monitor.gather_all = np.concatenate(monitor.rows_flat)
                monitor.offsets = np.concatenate(
                    ([0], np.cumsum(sizes)[:-1]))
        self._encoded_batch: Optional[int] = None
        self._clean_reports: Optional[Tuple[MonitorReport, ...]] = None
        self._full_cache: Tuple[int, Optional[np.ndarray]] = (0, None)
        #: Built lazily on the first summary pass (None until then).
        self._delta_plan = None
        #: The path the last run_batch_summary call actually took
        #: ("delta" or "dense"); None before any summary pass.
        self.last_summary_path: Optional[str] = None
        if self._backend.name != "numpy":  # pragma: no cover - no CuPy CI
            self._adopt_backend()

    def _adopt_backend(self) -> None:  # pragma: no cover - no CuPy CI
        """Move the per-pass hot structure arrays (gather/scatter
        indices, LUTs, stream rows) into the backend's native memory;
        the host keeps the protocol-boundary packers."""
        move = self._backend.asarray
        for group in self._groups:
            group.gather_idx = move(group.gather_idx)
            kernel = group.kernel
            kernel.rows = tuple(move(row) for row in kernel.rows)
            if hasattr(kernel, "lut"):
                kernel.lut = move(kernel.lut)
        for monitor in self._observing:
            monitor.rows_flat = [move(row) for row in monitor.rows_flat]
            monitor.const_idx = move(monitor.const_idx)
            if monitor.gather_all is not None:
                monitor.gather_all = move(monitor.gather_all)
                monitor.offsets = move(monitor.offsets)

    # ------------------------------------------------------------------
    def _full_words(self, batch_size: int) -> np.ndarray:
        if self._full_cache[0] != batch_size:
            self._full_cache = (batch_size, full_words(batch_size))
        return self._full_cache[1]

    def _to_words(self, planes: Sequence[Sequence[int]],
                  knowns: Sequence[int], batch_size: int) -> np.ndarray:
        """Validate the protocol inputs and pack them into words."""
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        if len(planes) != self.num_chains or len(knowns) != self.num_chains:
            raise ValueError(
                f"expected {self.num_chains} plane chains, got "
                f"{len(planes)}")
        length = self.chain_length
        chain_full = (1 << length) - 1
        for chain_planes, known in zip(planes, knowns):
            if len(chain_planes) != length:
                raise ValueError(
                    f"expected {length} planes per chain, got "
                    f"{len(chain_planes)}")
            if not 0 <= known <= chain_full:
                raise ValueError("known mask exceeds the chain length")
        words = planes_to_words(planes, batch_size)
        for c, known in enumerate(knowns):
            unknown = chain_full & ~known
            while unknown:
                low = unknown & -unknown
                unknown ^= low
                if words[c, low.bit_length() - 1].any():
                    raise ValueError(
                        "unknown positions must hold all-zero planes")
        return words

    def _gather(self, group: _BlockGroup, words: np.ndarray,
                out: Optional[np.ndarray] = None) -> np.ndarray:
        """The group's data words ``(G, k, L, W)``; tied-off padding
        inputs are constant-zero rows.  ``out`` (workspace buffer of
        shape ``(G * k, L, W)``) is fully overwritten when given."""
        idx = group.gather_idx.reshape(-1)
        if out is None:
            data = words[idx]
        else:
            data = self.xp.take(words, idx, axis=0, out=out)
        data = data.reshape(len(group.monitors), group.kernel.k,
                            self.chain_length, -1)
        if group.pad_mask is not None:
            data[group.pad_mask] = 0
        return data

    def _stream_signature(self, monitor: _SimdStreamMonitor,
                          words_flat: np.ndarray,
                          full: np.ndarray) -> np.ndarray:
        """The batch's signature planes of one stream block."""
        if monitor.gather_all is not None:
            sig = np.bitwise_xor.reduceat(words_flat[monitor.gather_all],
                                          monitor.offsets, axis=0)
        else:
            # A signature bit with no stream dependence (possible for
            # degenerate short streams): reduceat cannot express an
            # empty segment, so fold row by row.
            sig = np.zeros((len(monitor.rows_flat), words_flat.shape[1]),
                           dtype=np.uint64)
            for j, idx in enumerate(monitor.rows_flat):
                if idx.size:
                    sig[j] = np.bitwise_xor.reduce(words_flat[idx], axis=0)
        if monitor.const_idx.size:
            sig[monitor.const_idx] ^= full
        return sig

    # ------------------------------------------------------------------
    # Batch interface
    # ------------------------------------------------------------------
    def encode_pass_batch(self, planes: Sequence[Sequence[int]],
                          knowns: Sequence[int], batch_size: int) -> int:
        """Run one batched encoding pass; returns the cycle count."""
        words = self._to_words(planes, knowns, batch_size)
        return self._encode_words(words, batch_size)

    def _gather_ws(self, index: int, group: _BlockGroup,
                   words: np.ndarray) -> np.ndarray:
        """:meth:`_gather` through a per-group workspace buffer (the
        gathered view never escapes the pass that took it)."""
        shape = (group.gather_idx.size, self.chain_length, words.shape[2])
        buf = self._workspace.take(("gather", index), shape, np.uint64)
        return self._gather(group, words, out=buf)

    def _encode_words(self, words: np.ndarray, batch_size: int) -> int:
        """Encode a word-packed batch, storing the check words."""
        full = self._full_words(batch_size)
        for index, group in enumerate(self._groups):
            group.stored = group.kernel.encode(
                self._gather_ws(index, group, words), full)
        words_flat = words.reshape(-1, words.shape[2])
        for monitor in self._observing:
            monitor.stored = self._stream_signature(monitor, words_flat,
                                                    full)
        self._encoded_batch = batch_size
        return self.chain_length

    def decode_pass_batch(self, planes: Sequence[Sequence[int]],
                          knowns: Sequence[int],
                          batch_size: int) -> BatchDecodeResult:
        """Run one batched decoding pass with on-the-fly correction."""
        if self._encoded_batch is None:
            raise RuntimeError("no stored check bits: encode first")
        if batch_size != self._encoded_batch:
            raise RuntimeError(
                f"decode batch size {batch_size} does not match the "
                f"encoded batch size {self._encoded_batch}")
        words = self._to_words(planes, knowns, batch_size)
        full = self._full_words(batch_size)

        block_results: Dict[int, tuple] = {}
        group_flips: List[Tuple[np.ndarray, np.ndarray]] = []
        for group in self._groups:
            flips = self._decode_group(group, words, full, batch_size,
                                       block_results)
            if flips is not None:
                group_flips.append(flips)

        corrected_words = words.copy()
        corrected_flat = corrected_words.reshape(-1)
        if self._overlapping_correctors:
            # Reference-faithful last-block-wins feedback: every
            # correcting block assigns its slice in bank order, so on a
            # shared chain the last block's (possibly uncorrected)
            # version survives.  Each block's flips were computed from
            # the original words, so reassign-then-flip per block.
            for monitor in self._correcting:
                idx = monitor.chain_idx_arr
                corrected_words[idx] = words[idx]
                flat, bits = monitor._flips
                if flat.size:
                    np.bitwise_xor.at(corrected_flat, flat, bits)
        else:
            for flat, bits in group_flips:
                np.bitwise_xor.at(corrected_flat, flat, bits)

        stream_results: Dict[int, int] = {}
        words_flat = corrected_words.reshape(-1, corrected_words.shape[2])
        for monitor in self._observing:
            if monitor.stored is None:
                raise RuntimeError("no stored signature: encode first")
            fresh = self._stream_signature(monitor, words_flat, full)
            mismatch = np.bitwise_or.reduce(fresh ^ monitor.stored, axis=0)
            stream_results[id(monitor)] = _words_to_int(mismatch)

        # Convert only the cells the decode actually changed back into
        # plane ints; unchanged cells reuse the caller's (immutable)
        # plane objects, so a sparse batch pays almost no conversion.
        changed = (corrected_words != words).any(axis=2)
        corrected_planes = [list(chain_planes) for chain_planes in planes]
        if changed.any():
            for c, position in zip(*(idx.tolist()
                                     for idx in np.nonzero(changed))):
                corrected_planes[c][position] = int.from_bytes(
                    np.ascontiguousarray(
                        corrected_words[c, position],
                        dtype=np.uint64).tobytes(),
                    "little")

        result = assemble_batch_result(self._order,
                                       self._clean_report_tuple(),
                                       block_results, stream_results,
                                       corrected_planes,
                                       batch_size)
        # The word form of the corrected state rides along so that
        # downstream consumers (the vectorised state-domain comparator)
        # never re-pack the planes.
        result.corrected_words = corrected_words
        return result

    # ------------------------------------------------------------------
    def _decode_group(self, group: _BlockGroup, words: np.ndarray,
                      full: np.ndarray, batch_size: int,
                      block_results: Dict[int, tuple]
                      ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Decode one code group; returns its XOR-scatter flips."""
        monitors = group.monitors
        out = group.kernel.decode(self._gather(group, words), group.stored,
                                  full, batch_size)
        if out is None:
            for monitor in monitors:
                monitor._flips = _NO_FLIPS
                block_results[id(monitor)] = (0, 0, {}, {})
            return None
        err_b, pos = out
        k = group.kernel.k
        width = group.width[:, None, None]
        uncorr_b = err_b & ((pos == -2) | ((pos >= width) & (pos < k)))
        data_fix = err_b & (pos >= 0) & (pos < width)
        det_ints = _mask_ints(err_b.any(axis=1))
        unc_ints = _mask_ints(uncorr_b.any(axis=1))

        # Sequence-major, cycle-ascending enumeration: transposing to
        # (G, B, cycle) makes np.nonzero emit each (monitor, sequence)
        # pair's entries contiguously, so the per-sequence lists are
        # built by slicing runs instead of appending per entry.
        length = self.chain_length
        bad: List[Dict[int, List[int]]] = [{} for _ in monitors]
        group_idx, seqs, cycles = np.nonzero(err_b.transpose(0, 2, 1)
                                             [:, :, ::-1])
        cycle_list = cycles.tolist()
        for g, b, start, end in _runs(group_idx, seqs):
            bad[g][b] = cycle_list[start:end]

        corr: List[Dict[int, List[CorrectionEvent]]] = [{} for _ in monitors]
        fix_t = data_fix.transpose(0, 2, 1)[:, :, ::-1]
        group_idx, seqs, cycles = np.nonzero(fix_t)
        if group_idx.size:
            fix_pos = pos.transpose(0, 2, 1)[:, :, ::-1][group_idx, seqs,
                                                         cycles]
            chains = group.gather_idx[group_idx, fix_pos]
            flat = (chains * length + (length - 1 - cycles)) \
                * words.shape[2] + (seqs >> 6)
            bits = np.left_shift(np.uint64(1),
                                 (seqs & 63).astype(np.uint64))
            chain_list = chains.tolist()
            cycle_list = cycles.tolist()
            for g, b, start, end in _runs(group_idx, seqs):
                block_index = monitors[g].block.block_index
                # Positional construction (block_index, chain_index,
                # cycle): events are the hot term of dense batches.
                corr[g][b] = [
                    CorrectionEvent(block_index, chain_list[i],
                                    cycle_list[i])
                    for i in range(start, end)]
        else:
            flat, bits = _NO_FLIPS

        if self._overlapping_correctors and group_idx.size:
            for g, monitor in enumerate(monitors):
                mask = group_idx == g
                monitor._flips = (flat[mask], bits[mask])
        else:
            for monitor in monitors:
                monitor._flips = _NO_FLIPS

        for g, monitor in enumerate(monitors):
            block_results[id(monitor)] = (det_ints[g], unc_ints[g],
                                          corr[g], bad[g])
        return flat, bits

    def _clean_report_tuple(self) -> Tuple[MonitorReport, ...]:
        if self._clean_reports is None:
            self._clean_reports = clean_report_tuple(self._order)
        return self._clean_reports

    # ------------------------------------------------------------------
    # Summary interface (columnar, never touches plane ints)
    # ------------------------------------------------------------------
    def run_batch_summary(self, states: Sequence[int],
                          knowns: Sequence[int], flips,
                          batch_size: int,
                          path: str = "auto") -> BatchOutcomeArrays:
        """Replicate, encode, inject, decode and compare -- all in the
        word-packed layout, returning only columnar verdicts.

        The numbers are bit-identical to driving
        :meth:`encode_pass_batch` / :meth:`decode_pass_batch` with the
        replicated/injected planes and folding the object results field
        by field; the summary pass simply skips every report,
        correction-event and plane-int materialisation.

        ``path`` selects the implementation: ``"auto"`` (default)
        takes the sparse-delta fast path when the bank structure
        supports superposition and the batch's mean flips per sequence
        is at or below ``self.delta_crossover`` (exactly-at-threshold
        batches included), ``"delta"`` / ``"dense"`` force one side
        (``"delta"`` raises ``ValueError`` on unsupported structures).
        Both paths return bit-identical arrays; the one taken is
        published as ``self.last_summary_path``.
        """
        from repro.engines.summary import bits_matrix
        from repro.faults.batch import PatternBatch

        if path not in ("auto", "delta", "dense"):
            raise ValueError(
                f"unknown summary path {path!r}; choose 'auto', "
                f"'delta' or 'dense'")
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        if len(states) != self.num_chains or len(knowns) != self.num_chains:
            raise ValueError(
                f"expected {self.num_chains} chain states, got "
                f"{len(states)}")
        known_bits = bits_matrix(knowns, self.chain_length)
        use_delta = False
        if path != "dense":
            plan = self._delta_plan_for()
            if plan.supported:
                if isinstance(flips, PatternBatch):
                    num_flips = flips.num_flips
                else:
                    num_flips = sum(bin(mask).count("1")
                                    for mask in flips.values())
                use_delta = (path == "delta"
                             or num_flips
                             <= self.delta_crossover * batch_size)
            elif path == "delta":
                raise ValueError(
                    f"summary path 'delta' is unavailable for this "
                    f"monitor bank: {plan.reason}")
        if use_delta:
            self.last_summary_path = "delta"
            return self._delta_summary(plan, knowns, known_bits, flips,
                                       batch_size)
        self.last_summary_path = "dense"
        return self._dense_summary(states, knowns, known_bits, flips,
                                   batch_size)

    def _delta_plan_for(self):
        """The engine's delta plan, built lazily once per instance (the
        LUT/column tables inside are process-wide already)."""
        if self._delta_plan is None:
            self._delta_plan = build_plan(
                self._groups, self._observing,
                self._overlapping_correctors, self.num_chains,
                self.chain_length, xp=self.xp)
        return self._delta_plan

    def _delta_summary(self, plan, knowns: Sequence[int],
                       known_bits: np.ndarray, flips,
                       batch_size: int) -> BatchOutcomeArrays:
        """The sparse fast path: verdicts from flip coordinates alone
        (the baseline cancels by GF(2) superposition -- see
        :mod:`repro.engines.delta`)."""
        from repro.faults.batch import (
            PatternBatch,
            batch_flips_coords,
            pattern_batch_coords,
        )

        if isinstance(flips, PatternBatch):
            seqs, cells, injected = pattern_batch_coords(
                flips, known_bits, batch_size)
        else:
            seqs, cells, injected = batch_flips_coords(
                flips, knowns, batch_size, self.chain_length)
        if self._backend.name != "numpy":  # pragma: no cover - no CuPy CI
            move = self._backend.asarray
            seqs, cells, injected = move(seqs), move(cells), move(injected)
            known_bits = move(known_bits)
        return delta_summary(plan, known_bits, seqs, cells, injected,
                             batch_size, xp=self.xp)

    def _dense_summary(self, states: Sequence[int], knowns: Sequence[int],
                       known_bits: np.ndarray, flips,
                       batch_size: int) -> BatchOutcomeArrays:
        """The dense word pipeline (every density), with workspace-
        backed state buffers."""
        from repro.engines.summary import (
            bits_matrix,
            replicate_state_words,
            residual_counts_words,
        )
        from repro.faults.batch import (
            PatternBatch,
            batch_flips_arrays,
            pattern_batch_arrays,
        )

        length = self.chain_length
        full = self._full_words(batch_size)
        state_bits = bits_matrix(states, length)
        # Unknown positions hold all-zero planes (the treat-X-as-0
        # rule), exactly like _to_words requires of protocol callers.
        state_bits &= known_bits
        words = replicate_state_words(
            state_bits, full,
            out=self._workspace.take(
                "summary_words", state_bits.shape + (full.size,),
                np.uint64),
            xp=self.xp)
        self._encode_words(words, batch_size)
        # A PatternBatch resolves to scatter arrays without any
        # per-flip Python work; a BatchFlips dict goes through the
        # shared dict resolver.
        if isinstance(flips, PatternBatch):
            flip_chains, flip_positions, flip_masks, injected = \
                pattern_batch_arrays(flips, knowns, batch_size)
        else:
            flip_chains, flip_positions, flip_masks, injected = \
                batch_flips_arrays(flips, knowns, batch_size)
        if flip_chains.size:
            words[flip_chains, flip_positions] ^= flip_masks

        detected = np.zeros(batch_size, dtype=bool)
        uncorrectable = np.zeros(batch_size, dtype=bool)
        corrections = np.zeros(batch_size, dtype=np.int64)
        num_words = words.shape[2]
        overlap = self._overlapping_correctors
        group_flips: List[Tuple[np.ndarray, np.ndarray]] = []
        if overlap:
            pre_correction = self._workspace.take("summary_pre",
                                                  words.shape, np.uint64)
            pre_correction[...] = words
        else:
            pre_correction = None
        words_flat = words.reshape(-1)
        for index, group in enumerate(self._groups):
            out = group.kernel.decode(self._gather_ws(index, group, words),
                                      group.stored, full, batch_size)
            if out is None:
                for monitor in group.monitors:
                    monitor._flips = _NO_FLIPS
                continue
            err_b, pos = out
            k = group.kernel.k
            width = group.width[:, None, None]
            detected |= err_b.any(axis=(0, 1))
            uncorr_b = err_b & ((pos == -2) | ((pos >= width) & (pos < k)))
            uncorrectable |= uncorr_b.any(axis=(0, 1))
            data_fix = err_b & (pos >= 0) & (pos < width)
            corrections += data_fix.sum(axis=(0, 1), dtype=np.int64)
            group_idx, positions, seqs = np.nonzero(data_fix)
            if not group_idx.size:
                for monitor in group.monitors:
                    monitor._flips = _NO_FLIPS
                continue
            fix_pos = pos[group_idx, positions, seqs]
            chains = group.gather_idx[group_idx, fix_pos]
            flat = (chains * length + positions) * num_words + (seqs >> 6)
            bits = np.left_shift(np.uint64(1),
                                 (seqs & 63).astype(np.uint64))
            if overlap:
                for g, monitor in enumerate(group.monitors):
                    mask = group_idx == g
                    monitor._flips = (flat[mask], bits[mask])
            else:
                group_flips.append((flat, bits))

        if overlap:
            # Reference-faithful last-block-wins feedback, as in
            # decode_pass_batch: reassign each block's slice from the
            # pre-correction words in bank order, then apply its flips.
            for monitor in self._correcting:
                idx = monitor.chain_idx_arr
                words[idx] = pre_correction[idx]
                flat, bits = monitor._flips
                if flat.size:
                    np.bitwise_xor.at(words_flat, flat, bits)
        else:
            for flat, bits in group_flips:
                np.bitwise_xor.at(words_flat, flat, bits)

        corrected_flat2 = words.reshape(-1, num_words)
        for monitor in self._observing:
            fresh = self._stream_signature(monitor, corrected_flat2, full)
            mismatch = np.bitwise_or.reduce(fresh ^ monitor.stored, axis=0)
            if mismatch.any():
                mismatch_bits = _unpack_bits(mismatch,
                                             batch_size).astype(bool)
                detected |= mismatch_bits
                uncorrectable |= mismatch_bits

        # Vectorised state-domain comparator against the replicated
        # pre-sleep state (the shared kernel; bit matrices are already
        # expanded, so pass them through).
        residuals = residual_counts_words(states, knowns, words,
                                          batch_size,
                                          state_bits=state_bits,
                                          known_bits=known_bits,
                                          xp=self.xp)

        return BatchOutcomeArrays(
            injected=injected.astype(np.int64),
            detected=detected,
            uncorrectable=uncorrectable,
            residual_errors=residuals,
            corrections_applied=corrections)

    # ------------------------------------------------------------------
    # Scalar interface (a batch of one, through the same word path)
    # ------------------------------------------------------------------
    def encode_pass(self, design) -> int:
        states, knowns = pack_chains(design.chains)
        planes = replicate_states(states, self.chain_length, 1)
        return self.encode_pass_batch(planes, knowns, 1)

    def decode_pass(self, design) -> List[MonitorReport]:
        states, knowns = pack_chains(design.chains)
        planes = replicate_states(states, self.chain_length, 1)
        result = self.decode_pass_batch(planes, knowns, 1)
        corrected_states = states_from_planes(result.corrected, 0)
        write_back_chains(design.chains, states, knowns, corrected_states)
        return list(result.reports[0])


__all__ = [
    "SimdBatchedEngine",
    "planes_to_words",
    "words_to_planes",
    "full_words",
]
