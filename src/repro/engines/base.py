"""The simulation-engine protocol.

A *simulation engine* owns the encode/decode monitoring passes of a
:class:`~repro.core.protected.ProtectedDesign`: everything between
"circulate the chains through the monitoring blocks" and "the chains
now hold the (corrected) state".  The design object sequences the
controller, the power domain and the fault injection; the engine only
decides *how* the passes are computed -- per-flop objects, packed
integers, bit planes, or anything a third party registers.

Engines are constructed per design (one engine instance serves one
monitor bank / chain geometry) by the factories in
:mod:`repro.engines.registry` and cached on the design, keyed on the
bank and geometry they were built from, so a design whose monitoring
structure is rebuilt gets a fresh engine automatically.

Two interfaces exist:

* the **scalar** interface (:meth:`SimulationEngine.encode_pass` /
  :meth:`~SimulationEngine.decode_pass`), mandatory, drives one design
  through one pass and leaves the corrected state in the design's
  chains;
* the **batch** interface (:meth:`~SimulationEngine.encode_pass_batch`
  / :meth:`~SimulationEngine.decode_pass_batch`), advertised through
  :class:`EngineCapabilities`, which simulates ``B`` independent
  sequences per call over *bit planes*: plane ``planes[c][i]`` holds
  scan position ``i`` of chain ``c`` for every sequence at once, bit
  ``b`` belonging to batch sequence ``b``.
  :meth:`~repro.core.protected.ProtectedDesign.sleep_wake_cycle_batch`
  uses it when available and falls back to a per-sequence loop (with
  identical semantics) when not;
* the **summary** interface (:meth:`~SimulationEngine.run_batch_summary`),
  also advertised through :class:`EngineCapabilities`, which runs a
  whole batch -- replicate, encode, inject, decode, compare against the
  pre-sleep state -- in the engine's native layout and returns only the
  **columnar** per-sequence verdicts (:class:`BatchOutcomeArrays`, one
  ndarray per outcome field).  Summary consumers (campaign counters)
  never materialise per-sequence report/outcome objects; the object
  path of :mod:`repro.engines.reporting` remains available for
  consumers that need them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.monitor import MonitorReport


@dataclass(frozen=True)
class EngineCapabilities:
    """What an engine can do beyond the mandatory scalar passes.

    Attributes
    ----------
    batch:
        True when the engine implements the bit-plane batch interface
        (``encode_pass_batch`` / ``decode_pass_batch``).  Engines
        without it still work in batched campaigns through the
        per-sequence fallback loop.
    summary:
        True when the engine implements the columnar summary pass
        (``run_batch_summary``).  Summary support may carry additional
        runtime requirements (the built-in implementations need
        numpy), so consumers should gate on
        :attr:`SimulationEngine.supports_summary`, which folds those
        in.
    """

    batch: bool = False
    summary: bool = False


@dataclass
class BatchOutcomeArrays:
    """Columnar per-sequence outcome of one batched sleep/wake cycle.

    The array-native twin of a list of
    :class:`~repro.core.protected.CycleOutcome` objects: field ``f`` of
    sequence ``b`` lives at ``arrays.f[b]`` instead of
    ``outcomes[b].f``, so a whole batch's statistics reduce with a few
    ndarray operations and no per-sequence object is ever built.  All
    arrays are 1-D of length ``batch_size``.

    Attributes
    ----------
    injected:
        Per-sequence count of register bits actually flipped by the
        injection (flips landing on unknown cells are dropped, like the
        scalar injectors).
    detected:
        Boolean; any monitoring block reported a mismatch.
    uncorrectable:
        Boolean; some mismatch was flagged uncorrectable (stream-code
        mismatches included, matching the object path).
    residual_errors:
        Per-sequence count of register bits still differing from the
        pre-sleep state after the decode pass (unknown pre-sleep bits
        always count, as in the object path's state comparator).
    corrections_applied:
        Per-sequence count of bit corrections issued by the correcting
        blocks.
    """

    injected: Any
    detected: Any
    uncorrectable: Any
    residual_errors: Any
    corrections_applied: Any

    @property
    def batch_size(self) -> int:
        """Number of sequences the batch simulated."""
        return int(self.detected.shape[0])

    @property
    def state_intact(self) -> Any:
        """Boolean array: the post-decode state equals the pre-sleep
        state bit for bit (the ground-truth comparator verdict)."""
        return self.residual_errors == 0

    @property
    def corrected_claim(self) -> Any:
        """Boolean array: what the hardware believes -- mismatches were
        observed and none was flagged uncorrectable."""
        return self.detected & ~self.uncorrectable


@dataclass
class BatchDecodeResult:
    """Outcome of one batched decode pass over ``B`` sequences.

    Attributes
    ----------
    reports:
        Per-sequence report tuples, each in the monitor bank's block
        order.  Clean sequences share one cached tuple (reports are
        frozen), so a mostly-clean batch allocates almost nothing.
    corrected:
        The post-decode bit planes, ``corrected[c][i]`` being scan
        position ``i`` of chain ``c`` (every bit driven -- the decode
        pass reloads unknown bits as 0, like the reference).
    detected_mask / uncorrectable_mask:
        Planes of the per-sequence ``any(r.error_detected)`` /
        ``any(r.uncorrectable)`` verdicts.
    corrections:
        Per-sequence count of issued bit corrections, keyed by sequence
        index; absent sequences had none.
    corrected_words:
        Optional ``(chains, length, words)`` uint64 ndarray holding the
        same post-decode state as ``corrected`` in the word-packed
        layout of :mod:`repro.engines.simd`.  Engines that already hold
        the corrected state in that form attach it so downstream
        consumers (the vectorised state-domain comparator of
        :mod:`repro.engines.summary`) can skip the plane conversion;
        excluded from equality so results stay comparable across
        engines.
    """

    reports: List[Tuple[MonitorReport, ...]]
    corrected: List[List[int]]
    detected_mask: int = 0
    uncorrectable_mask: int = 0
    corrections: Dict[int, int] = field(default_factory=dict)
    corrected_words: Optional[Any] = field(default=None, compare=False,
                                           repr=False)


class SimulationEngine(ABC):
    """Interface every simulation engine implements.

    Concrete engines are built by a registered factory receiving the
    design (see :func:`repro.engines.registry.register_engine`); they
    may capture the design's monitor bank and chain geometry at
    construction time -- the design's engine cache guarantees they are
    rebuilt when either changes.
    """

    #: Registry name the engine was registered under (set by the
    #: registry when the factory returns, so subclasses need not).
    name: str = ""

    #: Capability flags; override in subclasses.
    capabilities: EngineCapabilities = EngineCapabilities()

    @property
    def supports_batch(self) -> bool:
        """True when the bit-plane batch interface is available."""
        return self.capabilities.batch

    @property
    def supports_summary(self) -> bool:
        """True when the columnar summary pass is usable *right now*.

        Defaults to the capability flag; engines whose summary pass has
        extra runtime requirements (numpy for the built-ins) override
        this to fold the availability check in, so campaign tasks can
        gate their fast path on one property.
        """
        return self.capabilities.summary

    # -- scalar interface ----------------------------------------------
    @abstractmethod
    def encode_pass(self, design) -> int:
        """Run one encoding pass over ``design``'s chains.

        Stores the check bits (inside the engine or the design's
        monitor blocks, implementation's choice) and returns the cycle
        count.  The chain state is left unchanged (a full circulation
        is the identity).
        """

    @abstractmethod
    def decode_pass(self, design) -> List[MonitorReport]:
        """Run one decoding pass with on-the-fly correction.

        Applies corrections to the design's chains (after the pass the
        chains hold the corrected, fully-driven state) and returns the
        per-block reports in the bank's block order.
        """

    # -- batch interface (optional) ------------------------------------
    def encode_pass_batch(self, planes: Sequence[Sequence[int]],
                          knowns: Sequence[int], batch_size: int) -> int:
        """Batched encode over bit planes; see the module docstring.

        ``knowns[c]`` is chain ``c``'s known-bit mask (bit ``i`` = scan
        position ``i``), shared by every sequence of the batch; planes
        at unknown positions must be all-zero (the monitors'
        treat-X-as-0 rule).
        """
        raise NotImplementedError(
            f"engine {self.name or type(self).__name__!r} does not "
            f"implement batched passes (capabilities.batch is False)")

    def decode_pass_batch(self, planes: Sequence[Sequence[int]],
                          knowns: Sequence[int],
                          batch_size: int) -> BatchDecodeResult:
        """Batched decode over bit planes; see the module docstring."""
        raise NotImplementedError(
            f"engine {self.name or type(self).__name__!r} does not "
            f"implement batched passes (capabilities.batch is False)")

    # -- summary interface (optional) -----------------------------------
    def run_batch_summary(self, states: Sequence[int],
                          knowns: Sequence[int], flips,
                          batch_size: int,
                          path: str = "auto") -> BatchOutcomeArrays:
        """Run a whole batch end to end, returning columnar verdicts.

        ``states[c]`` / ``knowns[c]`` are chain ``c``'s packed
        pre-sleep state and known-bit mask (bit ``i`` = scan position
        ``i``), shared by every sequence; ``flips`` is the batch's
        injection, either as per-cell sequence masks
        (:data:`repro.faults.batch.BatchFlips`) or as a sampled
        :class:`~repro.faults.batch.PatternBatch` (which array-native
        engines resolve without per-flip Python work).  The engine replicates
        the state in its native layout, runs one encode pass, applies
        the (known-gated) flips, runs one decode pass with correction
        and compares the corrected state against the pre-sleep state --
        semantically the virtual-copies batch of
        :meth:`~repro.core.protected.ProtectedDesign.sleep_wake_cycle_batch`,
        minus every per-sequence object.  The returned arrays are
        bit-identical to folding the object path's outcomes field by
        field (property-tested).

        ``path`` selects the summary implementation on engines that
        offer more than one (``"auto"`` -- the engine picks; the simd
        engine adds a sparse-delta fast path selectable with
        ``"delta"`` / forcible off with ``"dense"``; the jit engine
        additionally accepts ``"jit"`` to force its fused single-pass
        kernels).  Engines with a
        single implementation accept ``"auto"`` and ``"dense"`` and
        raise ``ValueError`` for paths they do not provide; since the
        paths are bit-identical wherever both exist, callers that do
        not care simply leave the default.
        """
        raise NotImplementedError(
            f"engine {self.name or type(self).__name__!r} does not "
            f"implement the columnar summary pass (capabilities.summary "
            f"is False)")


__all__ = [
    "EngineCapabilities",
    "BatchDecodeResult",
    "BatchOutcomeArrays",
    "SimulationEngine",
]
