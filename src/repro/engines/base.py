"""The simulation-engine protocol.

A *simulation engine* owns the encode/decode monitoring passes of a
:class:`~repro.core.protected.ProtectedDesign`: everything between
"circulate the chains through the monitoring blocks" and "the chains
now hold the (corrected) state".  The design object sequences the
controller, the power domain and the fault injection; the engine only
decides *how* the passes are computed -- per-flop objects, packed
integers, bit planes, or anything a third party registers.

Engines are constructed per design (one engine instance serves one
monitor bank / chain geometry) by the factories in
:mod:`repro.engines.registry` and cached on the design, keyed on the
bank and geometry they were built from, so a design whose monitoring
structure is rebuilt gets a fresh engine automatically.

Two interfaces exist:

* the **scalar** interface (:meth:`SimulationEngine.encode_pass` /
  :meth:`~SimulationEngine.decode_pass`), mandatory, drives one design
  through one pass and leaves the corrected state in the design's
  chains;
* the **batch** interface (:meth:`~SimulationEngine.encode_pass_batch`
  / :meth:`~SimulationEngine.decode_pass_batch`), advertised through
  :class:`EngineCapabilities`, which simulates ``B`` independent
  sequences per call over *bit planes*: plane ``planes[c][i]`` holds
  scan position ``i`` of chain ``c`` for every sequence at once, bit
  ``b`` belonging to batch sequence ``b``.
  :meth:`~repro.core.protected.ProtectedDesign.sleep_wake_cycle_batch`
  uses it when available and falls back to a per-sequence loop (with
  identical semantics) when not.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.monitor import MonitorReport


@dataclass(frozen=True)
class EngineCapabilities:
    """What an engine can do beyond the mandatory scalar passes.

    Attributes
    ----------
    batch:
        True when the engine implements the bit-plane batch interface
        (``encode_pass_batch`` / ``decode_pass_batch``).  Engines
        without it still work in batched campaigns through the
        per-sequence fallback loop.
    """

    batch: bool = False


@dataclass
class BatchDecodeResult:
    """Outcome of one batched decode pass over ``B`` sequences.

    Attributes
    ----------
    reports:
        Per-sequence report tuples, each in the monitor bank's block
        order.  Clean sequences share one cached tuple (reports are
        frozen), so a mostly-clean batch allocates almost nothing.
    corrected:
        The post-decode bit planes, ``corrected[c][i]`` being scan
        position ``i`` of chain ``c`` (every bit driven -- the decode
        pass reloads unknown bits as 0, like the reference).
    detected_mask / uncorrectable_mask:
        Planes of the per-sequence ``any(r.error_detected)`` /
        ``any(r.uncorrectable)`` verdicts.
    corrections:
        Per-sequence count of issued bit corrections, keyed by sequence
        index; absent sequences had none.
    """

    reports: List[Tuple[MonitorReport, ...]]
    corrected: List[List[int]]
    detected_mask: int = 0
    uncorrectable_mask: int = 0
    corrections: Dict[int, int] = field(default_factory=dict)


class SimulationEngine(ABC):
    """Interface every simulation engine implements.

    Concrete engines are built by a registered factory receiving the
    design (see :func:`repro.engines.registry.register_engine`); they
    may capture the design's monitor bank and chain geometry at
    construction time -- the design's engine cache guarantees they are
    rebuilt when either changes.
    """

    #: Registry name the engine was registered under (set by the
    #: registry when the factory returns, so subclasses need not).
    name: str = ""

    #: Capability flags; override in subclasses.
    capabilities: EngineCapabilities = EngineCapabilities()

    @property
    def supports_batch(self) -> bool:
        """True when the bit-plane batch interface is available."""
        return self.capabilities.batch

    # -- scalar interface ----------------------------------------------
    @abstractmethod
    def encode_pass(self, design) -> int:
        """Run one encoding pass over ``design``'s chains.

        Stores the check bits (inside the engine or the design's
        monitor blocks, implementation's choice) and returns the cycle
        count.  The chain state is left unchanged (a full circulation
        is the identity).
        """

    @abstractmethod
    def decode_pass(self, design) -> List[MonitorReport]:
        """Run one decoding pass with on-the-fly correction.

        Applies corrections to the design's chains (after the pass the
        chains hold the corrected, fully-driven state) and returns the
        per-block reports in the bank's block order.
        """

    # -- batch interface (optional) ------------------------------------
    def encode_pass_batch(self, planes: Sequence[Sequence[int]],
                          knowns: Sequence[int], batch_size: int) -> int:
        """Batched encode over bit planes; see the module docstring.

        ``knowns[c]`` is chain ``c``'s known-bit mask (bit ``i`` = scan
        position ``i``), shared by every sequence of the batch; planes
        at unknown positions must be all-zero (the monitors'
        treat-X-as-0 rule).
        """
        raise NotImplementedError(
            f"engine {self.name or type(self).__name__!r} does not "
            f"implement batched passes (capabilities.batch is False)")

    def decode_pass_batch(self, planes: Sequence[Sequence[int]],
                          knowns: Sequence[int],
                          batch_size: int) -> BatchDecodeResult:
        """Batched decode over bit planes; see the module docstring."""
        raise NotImplementedError(
            f"engine {self.name or type(self).__name__!r} does not "
            f"implement batched passes (capabilities.batch is False)")


__all__ = ["EngineCapabilities", "BatchDecodeResult", "SimulationEngine"]
