"""Shared vectorised helpers for the columnar summary passes.

The summary interface of :mod:`repro.engines.base`
(:meth:`~repro.engines.base.SimulationEngine.run_batch_summary`)
returns per-sequence verdicts as ndarrays; this module is the single
implementation of the array kernels both built-in batch engines build
that answer from:

* :func:`bits_matrix` -- packed chain integers to a ``(C, L)`` boolean
  matrix (the replication/masking front end);
* :func:`residual_counts_words` -- the **vectorised state-domain
  comparator**: per-sequence Hamming distance between the corrected
  ``(C, L, W)`` word state and the packed pre-sleep state, with the
  object path's rule that unknown pre-sleep bits always count (the
  decode pass drives them, so they differ from X by definition).  It
  is used by the engines' summary passes *and* by
  :meth:`~repro.core.protected.ProtectedDesign.sleep_wake_cycle_batch`
  whenever the decode result carries ``corrected_words``, replacing
  the per-position Python loop;
* :func:`mask_bools` / :func:`counts_array` -- Python-int sequence
  masks and per-sequence count dicts (the bit-plane engine's native
  bookkeeping) to boolean/integer ndarrays.

Everything here requires numpy; callers gate on
:attr:`~repro.engines.base.SimulationEngine.supports_summary`, so a
pure-stdlib install never imports this module.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np


def planes_to_words(planes: Sequence[Sequence[int]],
                    batch_size: int) -> np.ndarray:
    """Pack protocol bit planes into a ``(C, L, W)`` uint64 word array.

    Bit ``b`` of word ``w`` is batch sequence ``64 * w + b``; raises
    ``ValueError`` when a plane holds bits outside the batch (including
    negative planes).  The boundary between the engine protocol's
    Python-int planes and every array kernel here, shared by the simd
    engine (which re-exports it) and the bit-plane engine's summary
    pass.
    """
    num_words = (batch_size + 63) // 64
    nbytes = num_words * 8
    buf = bytearray()
    for chain_planes in planes:
        for plane in chain_planes:
            try:
                buf += plane.to_bytes(nbytes, "little")
            except OverflowError:
                raise ValueError(
                    f"plane has bits outside the {batch_size}-sequence "
                    f"batch") from None
    words = np.frombuffer(buf, dtype=np.uint64)
    words = words.reshape(len(planes), -1, num_words)
    if batch_size % 64:
        if (words[..., -1] >> np.uint64(batch_size % 64)).any():
            raise ValueError(
                f"plane has bits outside the {batch_size}-sequence batch")
    return words


def bits_matrix(values: Sequence[int], length: int) -> np.ndarray:
    """Expand packed per-chain integers into a ``(C, length)`` bool
    matrix (bit ``i`` of ``values[c]`` lands at ``[c, i]``)."""
    nbytes = (length + 7) // 8
    buf = b"".join(value.to_bytes(nbytes, "little") for value in values)
    packed = np.frombuffer(buf, dtype=np.uint8).reshape(len(values), nbytes)
    return np.unpackbits(packed, axis=1, count=length,
                         bitorder="little").astype(bool)


def replicate_state_words(state_bits: np.ndarray,
                          full: np.ndarray,
                          out: "np.ndarray | None" = None,
                          xp=None) -> np.ndarray:
    """Broadcast a ``(C, L)`` bool state into ``(C, L, W)`` uint64 words
    (every sequence of the batch starts from the same state).

    ``full`` is the all-sequences word mask
    (:func:`repro.engines.simd.full_words`).  ``out`` (shape ``(C, L,
    W)``, uint64) is fully overwritten when given -- the hook the
    engines' :class:`~repro.engines.backend.Workspace` buffers plug
    into; ``xp`` is the injected array namespace (default numpy).
    """
    xp = np if xp is None else xp
    if out is None:
        return xp.where(state_bits[:, :, None], full, xp.uint64(0))
    out[...] = xp.uint64(0)
    out[state_bits] = full
    return out


def per_sequence_popcounts(words: np.ndarray, batch_size: int,
                           xp=None) -> np.ndarray:
    """Per-sequence set-bit counts of an ``(..., W)`` word array.

    The leading axes are summed away: the result is ``(batch_size,)``
    with entry ``b`` counting the set bits belonging to sequence ``b``
    across every word row.  Rows that are entirely zero should be
    filtered by the caller first -- the unpack cost is proportional to
    the rows passed in.  ``xp`` is the injected array namespace
    (default numpy); it must provide numpy's ``unpackbits``.
    """
    xp = np if xp is None else xp
    flat = xp.ascontiguousarray(words, dtype=xp.uint64).reshape(
        -1, words.shape[-1])
    if not flat.size:
        return xp.zeros(batch_size, dtype=np.int64)
    bits = xp.unpackbits(flat.view(xp.uint8), axis=-1, bitorder="little")
    return bits[:, :batch_size].sum(axis=0, dtype=np.int64)


def residual_counts_words(states: Sequence[int], knowns: Sequence[int],
                          corrected_words: np.ndarray,
                          batch_size: int,
                          state_bits: "np.ndarray | None" = None,
                          known_bits: "np.ndarray | None" = None,
                          xp=None) -> np.ndarray:
    """Vectorised state-domain comparator over word-packed batch state.

    Returns the ``(batch_size,)`` per-sequence count of register bits
    whose post-decode value differs from the packed pre-sleep
    ``states``: known positions compare bit for bit, and every unknown
    pre-sleep position counts unconditionally (same rule as
    ``StateSnapshot.diff`` in the scalar path -- the decode pass drives
    unknown bits, so they differ from X by definition).

    Callers that already hold the expanded ``(C, L)`` bool matrices of
    ``states``/``knowns`` pass them via ``state_bits``/``known_bits``
    to skip the re-expansion; the comparison rule itself lives only
    here.  ``xp`` is the injected array namespace (default numpy);
    ``corrected_words`` and the bit matrices must live in it.
    """
    xp = np if xp is None else xp
    num_chains, length, _num_words = corrected_words.shape
    if state_bits is None:
        state_bits = bits_matrix(states, length)
    if known_bits is None:
        known_bits = bits_matrix(knowns, length)
    unknown_positions = int(known_bits.size - known_bits.sum())
    diff = xp.where(state_bits[:, :, None],
                    ~corrected_words, corrected_words)
    # The all-ones complement above sets the unused tail bits of the
    # last word; clear them so the `changed` filter stays proportional
    # to the cells that actually differ (the popcount slice would drop
    # them anyway, but only after unpacking every flagged row).
    if batch_size % 64:
        diff[..., -1] &= xp.uint64((1 << (batch_size % 64)) - 1)
    diff[~known_bits] = 0
    changed = diff.any(axis=2)
    counts = per_sequence_popcounts(diff[changed], batch_size, xp=xp)
    return counts + unknown_positions


def mask_bools(mask: int, batch_size: int) -> np.ndarray:
    """A Python-int sequence mask as a ``(batch_size,)`` bool array."""
    nbytes = (batch_size + 7) // 8
    packed = np.frombuffer(mask.to_bytes(nbytes, "little"), dtype=np.uint8)
    return np.unpackbits(packed, count=batch_size,
                         bitorder="little").astype(bool)


def counts_array(counts: Dict[int, int], batch_size: int) -> np.ndarray:
    """A sparse per-sequence count dict as a dense int64 array."""
    out = np.zeros(batch_size, dtype=np.int64)
    for sequence, count in counts.items():
        out[sequence] = count
    return out


__all__ = [
    "planes_to_words",
    "bits_matrix",
    "replicate_state_words",
    "per_sequence_popcounts",
    "residual_counts_words",
    "mask_bools",
    "counts_array",
]
