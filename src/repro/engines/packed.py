"""Registry adapter for the packed-integer fast path.

Wraps :class:`repro.fastpath.engine.PackedMonitorEngine` behind the
:class:`~repro.engines.base.SimulationEngine` interface: the adapter
owns the pack/write-back boundary, the wrapped engine does the
bit-exact packed passes.  One adapter serves one monitor bank and
chain geometry (the design's engine cache rebuilds it when either
changes -- the fix for the historical stale-engine hazard).
"""

from __future__ import annotations

from typing import List

from repro.core.monitor import MonitorBank, MonitorReport
from repro.engines.base import EngineCapabilities, SimulationEngine
from repro.engines.packing import pack_chains, write_back_chains
from repro.fastpath.engine import PackedMonitorEngine


class PackedEngineAdapter(SimulationEngine):
    """Packed-integer simulation of the encode/decode passes."""

    capabilities = EngineCapabilities(batch=False)

    def __init__(self, bank: MonitorBank, num_chains: int,
                 chain_length: int):
        self.engine = PackedMonitorEngine(bank, num_chains, chain_length)

    def encode_pass(self, design) -> int:
        states, knowns = pack_chains(design.chains)
        return self.engine.encode_pass(states, knowns)

    def decode_pass(self, design) -> List[MonitorReport]:
        states, knowns = pack_chains(design.chains)
        reports, corrected = self.engine.decode_pass(states, knowns)
        write_back_chains(design.chains, states, knowns, corrected)
        return reports


__all__ = ["PackedEngineAdapter"]
