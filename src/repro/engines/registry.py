"""Name-based registry of simulation engines.

The twin of :mod:`repro.codes.registry`, for engines: campaign drivers
and designs select an engine by name (``"reference"``, ``"packed"``,
``"batched"``, ``"simd"`` when numpy is installed, or anything
registered by a third party), and
:class:`~repro.core.protected.ProtectedDesign` resolves the name to a
constructed :class:`~repro.engines.base.SimulationEngine` through this
module.  Registering an engine here is the *only* step needed to make
it selectable everywhere -- ``ProtectedDesign(engine=...)``,
``validate_engine``/``available_engines``, the validation campaigns and
the sharded campaign tasks all source from this registry.

A factory receives the design being equipped and returns the engine
instance::

    from repro.engines import SimulationEngine, register_engine

    class MyEngine(SimulationEngine):
        def encode_pass(self, design): ...
        def decode_pass(self, design): ...

    register_engine("mine", lambda design: MyEngine())

Factories typically capture the design's ``monitor_bank`` and chain
geometry; the design caches the instance keyed on exactly those, so a
rebuilt bank or re-balanced chains trigger a fresh factory call.

One multiprocessing caveat: the registry lives in the interpreter that
imported it.  Sharded campaigns using the ``spawn`` start method (the
fallback where ``fork`` is unavailable) re-import this module in each
worker with only the built-ins registered, so third-party engines used
with ``num_workers > 1`` must be registered at import time of a module
the workers also import (e.g. the package defining the engine), not
inline in a script body.  ``fork`` workers inherit the parent's
registrations as-is.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.engines.base import SimulationEngine

EngineFactory = Callable[[object], SimulationEngine]

_FACTORIES: Dict[str, EngineFactory] = {}


def register_engine(name: str, factory: EngineFactory,
                    replace: bool = False) -> None:
    """Register an engine factory under a (lower-cased) name.

    Parameters
    ----------
    name:
        Selection name, as passed to ``ProtectedDesign(engine=...)``.
    factory:
        Callable receiving the design and returning the engine.
    replace:
        Allow overwriting an existing registration; without it a name
        collision raises (protecting the built-ins from accidental
        shadowing).
    """
    key = name.lower()
    if not replace and key in _FACTORIES:
        raise ValueError(
            f"engine {name!r} is already registered; pass replace=True "
            f"to overwrite it")
    _FACTORIES[key] = factory


def unregister_engine(name: str) -> None:
    """Remove a registered engine (mainly for test hygiene)."""
    key = name.lower()
    if key not in _FACTORIES:
        raise ValueError(f"engine {name!r} is not registered")
    del _FACTORIES[key]


def available_engines() -> Tuple[str, ...]:
    """Engine names resolvable by :func:`get_engine`, in registration
    order (the built-ins first)."""
    return tuple(_FACTORIES)


#: Built-in engines that register conditionally, mapped to the module
#: whose importability gates them.  Shared with the capability lint
#: rule (which cross-checks gate against registry) and used below to
#: turn "unknown engine" into an actionable install hint when the name
#: is merely *absent*, not misspelled.
CONDITIONAL_ENGINES = {
    "simd": ("numpy", "the [simd] packaging extra"),
    "cuda": ("cupy", "the same word-packed engine on GPU arrays"),
    "jit": ("numba", "the [jit] packaging extra"),
}


def validate_engine(name: str) -> str:
    """Check an engine name, returning its canonical (lower-case) form;
    raise ``ValueError`` if unknown.

    The public eager-validation entry point: campaign drivers and
    sharded tasks call this at configuration time so a typo fails
    before any worker process is spawned.  The returned name is the
    registry key itself, so everything downstream (engine caches,
    ``design.engine``) speaks one spelling.  Optional engines
    (``"simd"``/``"cuda"``/``"jit"``) that are absent because their
    dependency is not installed fail with the dependency named, so a
    forced selection on a bare install is actionable rather than
    looking like a typo.
    """
    if not isinstance(name, str) or name.lower() not in _FACTORIES:
        hint = ""
        if isinstance(name, str) and name.lower() in CONDITIONAL_ENGINES:
            module, extra = CONDITIONAL_ENGINES[name.lower()]
            hint = (f"; engine {name.lower()!r} registers only when "
                    f"{module} is importable ({extra})")
        raise ValueError(
            f"unknown engine {name!r}; choose from "
            f"{available_engines()}{hint}")
    return name.lower()


def get_engine(name: str, design) -> SimulationEngine:
    """Resolve an engine name to a constructed engine for ``design``."""
    key = validate_engine(name)
    engine = _FACTORIES[key](design)
    if not isinstance(engine, SimulationEngine):
        raise TypeError(
            f"factory for engine {name!r} returned "
            f"{type(engine).__name__}, not a SimulationEngine")
    engine.name = key
    return engine


def _register_builtins() -> None:
    # Imported lazily so the registry module stays import-cycle-free
    # (engine modules import repro.core.monitor and repro.fastpath).
    def reference_factory(design):
        from repro.engines.reference import ReferenceEngine
        return ReferenceEngine()

    def packed_factory(design):
        from repro.engines.packed import PackedEngineAdapter
        return PackedEngineAdapter(design.monitor_bank,
                                   len(design.chains),
                                   len(design.chains[0]))

    def batched_factory(design):
        from repro.engines.bitplane import BitPlaneBatchedEngine
        return BitPlaneBatchedEngine(design.monitor_bank,
                                     len(design.chains),
                                     len(design.chains[0]))

    def simd_factory(design):
        from repro.engines.simd import SimdBatchedEngine
        return SimdBatchedEngine(design.monitor_bank,
                                 len(design.chains),
                                 len(design.chains[0]))

    def cuda_factory(design):  # pragma: no cover - exercised with CuPy
        from repro.engines.simd import SimdBatchedEngine
        return SimdBatchedEngine(design.monitor_bank,
                                 len(design.chains),
                                 len(design.chains[0]),
                                 backend="cuda")

    def jit_factory(design):  # pragma: no cover - exercised with numba
        from repro.engines.jit import JitFusedEngine
        return JitFusedEngine(design.monitor_bank,
                              len(design.chains),
                              len(design.chains[0]))

    register_engine("reference", reference_factory)
    register_engine("packed", packed_factory)
    register_engine("batched", batched_factory)
    # The numpy word-packed SIMD engine is part of the optional [simd]
    # extra; the core install stays pure Python, so the registration is
    # gated on numpy being importable (find_spec keeps the probe cheap
    # -- numpy itself is only imported when the engine is constructed).
    import importlib.util
    if importlib.util.find_spec("numpy") is not None:
        register_engine("simd", simd_factory)
        # The same word-packed engine on the CuPy array backend, gated
        # the same way: without CuPy there is simply no "cuda" entry
        # (no error, degrades silently -- CI smokes this).
        if importlib.util.find_spec("cupy") is not None:  # pragma: no cover
            register_engine("cuda", cuda_factory)
        # The Numba-fused single-pass summary engine ([jit] extra),
        # gated identically: without numba there is simply no "jit"
        # entry -- no error, degrades silently (CI smokes this), and
        # the uncompiled kernels stay importable for the bit-identity
        # property suite.
        if importlib.util.find_spec("numba") is not None:
            register_engine("jit", jit_factory)


_register_builtins()

__all__ = [
    "CONDITIONAL_ENGINES",
    "EngineFactory",
    "register_engine",
    "unregister_engine",
    "available_engines",
    "validate_engine",
    "get_engine",
]
