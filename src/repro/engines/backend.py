"""Pluggable array backends: the injected ``xp`` namespace.

The array-native engines (:mod:`repro.engines.simd`, the shared kernels
of :mod:`repro.engines.summary`, the flip resolvers of
:mod:`repro.faults.batch`) historically hard-coded ``import numpy as
np``.  This module turns the array namespace into an injected
dependency -- the ``xp`` convention of the array-API ecosystem -- so
the same word-packed pipeline can run on any numpy-compatible module:

* an :class:`ArrayBackend` bundles the namespace (``xp``) with the two
  host-boundary conversions the pipeline needs: ``asarray`` moves a
  host (numpy) array into the backend's native memory and ``to_host``
  brings a native array back for Python-int extraction;
* a process-wide registry mirrors :mod:`repro.engines.registry`:
  ``"numpy"`` registers whenever numpy is importable, ``"cuda"``
  (CuPy) registers whenever ``cupy`` is importable -- gated with the
  same ``find_spec`` probe as the ``[simd]`` extra, so an install
  without CuPy simply has no ``"cuda"`` entry and nothing errors;
* a :class:`Workspace` provides keyed, shape/dtype-checked reusable
  buffers so an engine's steady-state batches stop allocating fresh
  large arrays every pass.

For the numpy backend both conversions are identity functions; for
CuPy they are ``cupy.asarray`` / ``cupy.asnumpy``.  Numerical
equivalence of a non-default backend is asserted by the same
equivalence property suites that pin the simd engine to the reference
engine -- they parametrise over whatever backends this registry
exposes at run time.
"""

from __future__ import annotations

import importlib.util
from typing import Any, Callable, Dict, Optional, Tuple


class ArrayBackend:
    """One array namespace plus its host-boundary conversions.

    Parameters
    ----------
    name:
        Registry name (``"numpy"``, ``"cuda"``, ...).
    xp:
        The array module itself (``numpy``, ``cupy``, ...).
    asarray:
        Host (numpy) ndarray to backend-native array.  The word
        pipeline packs protocol integers on the host (``frombuffer``
        over Python-int bytes), then crosses into backend memory
        exactly once per pass through this hook.
    to_host:
        Backend-native array to host (numpy) ndarray; the reverse
        boundary, crossed only where Python ints must be produced
        (sequence masks, plane extraction).
    """

    __slots__ = ("name", "xp", "asarray", "to_host")

    def __init__(self, name: str, xp: Any,
                 asarray: Callable[[Any], Any],
                 to_host: Callable[[Any], Any]):
        self.name = name
        self.xp = xp
        self.asarray = asarray
        self.to_host = to_host

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArrayBackend({self.name!r})"


BackendFactory = Callable[[], ArrayBackend]

_FACTORIES: Dict[str, BackendFactory] = {}
_INSTANCES: Dict[str, ArrayBackend] = {}

#: Backend used when an engine is built without an explicit selection.
DEFAULT_BACKEND = "numpy"


def register_backend(name: str, factory: BackendFactory,
                     replace: bool = False) -> None:
    """Register an array-backend factory under a (lower-cased) name.

    The factory runs at most once per process (instances are cached);
    it is the place to import the heavyweight array module, so merely
    registering a backend costs nothing.
    """
    key = name.lower()
    if not replace and key in _FACTORIES:
        raise ValueError(
            f"array backend {name!r} is already registered; pass "
            f"replace=True to overwrite it")
    _FACTORIES[key] = factory
    _INSTANCES.pop(key, None)


def unregister_backend(name: str) -> None:
    """Remove a registered backend (mainly for test hygiene)."""
    key = name.lower()
    if key not in _FACTORIES:
        raise ValueError(f"array backend {name!r} is not registered")
    del _FACTORIES[key]
    _INSTANCES.pop(key, None)


def available_backends() -> Tuple[str, ...]:
    """Backend names resolvable by :func:`get_backend`, in
    registration order (``"numpy"`` first when numpy is installed)."""
    return tuple(_FACTORIES)


def get_backend(name: Optional[str] = None) -> ArrayBackend:
    """Resolve a backend name (default :data:`DEFAULT_BACKEND`) to its
    cached :class:`ArrayBackend` instance; raise ``ValueError`` if
    unknown."""
    key = (name if name is not None else DEFAULT_BACKEND).lower()
    if key not in _FACTORIES:
        raise ValueError(
            f"unknown array backend {name!r}; choose from "
            f"{available_backends()}")
    instance = _INSTANCES.get(key)
    if instance is None:
        instance = _FACTORIES[key]()
        if not isinstance(instance, ArrayBackend):
            raise TypeError(
                f"factory for array backend {key!r} returned "
                f"{type(instance).__name__}, not an ArrayBackend")
        _INSTANCES[key] = instance
    return instance


def default_backend_name() -> Optional[str]:
    """The default backend's name, or ``None`` on a pure-stdlib
    install (benchmark metadata uses this; it must never raise)."""
    return DEFAULT_BACKEND if DEFAULT_BACKEND in _FACTORIES else None


class Workspace:
    """Keyed reusable buffers for an engine's steady-state passes.

    ``take(key, shape, dtype)`` returns the buffer registered under
    ``key``, allocating (``xp.empty``) only when the key is new or its
    shape/dtype changed -- so a campaign running equally-shaped batches
    through one engine allocates its large arrays once and then reuses
    them every pass.  Buffers come back **uninitialised**: the caller
    owns every element it reads (the word pipeline fully overwrites
    its buffers each pass).  One workspace belongs to one engine
    instance; buffers must never escape the pass that took them.
    """

    __slots__ = ("xp", "_buffers")

    def __init__(self, xp: Any):
        self.xp = xp
        self._buffers: Dict[Any, Any] = {}

    def take(self, key: Any, shape: Tuple[int, ...], dtype: Any) -> Any:
        buffer = self._buffers.get(key)
        if (buffer is None or buffer.shape != tuple(shape)
                or buffer.dtype != dtype):
            buffer = self.xp.empty(shape, dtype=dtype)
            self._buffers[key] = buffer
        return buffer

    def clear(self) -> None:
        """Drop every buffer (e.g. before a geometry change)."""
        self._buffers.clear()


def _register_builtins() -> None:
    # find_spec keeps the probes import-free: registering costs
    # nothing, the heavyweight module import happens inside the
    # factory on first get_backend() resolution.
    def numpy_factory() -> ArrayBackend:
        import numpy

        def identity(array):
            return array

        return ArrayBackend("numpy", numpy, identity, identity)

    def cuda_factory() -> ArrayBackend:
        import cupy  # pragma: no cover - exercised only with CuPy

        return ArrayBackend("cuda", cupy, cupy.asarray, cupy.asnumpy)

    if importlib.util.find_spec("numpy") is not None:
        register_backend("numpy", numpy_factory)
    # CuPy rides the same gating idiom as the [simd] extra: present ->
    # selectable, absent -> silently not listed (no error, no entry).
    if importlib.util.find_spec("cupy") is not None:  # pragma: no cover
        register_backend("cuda", cuda_factory)


_register_builtins()

__all__ = [
    "ArrayBackend",
    "BackendFactory",
    "DEFAULT_BACKEND",
    "Workspace",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "unregister_backend",
]
