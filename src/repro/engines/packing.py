"""Chain-state packing helpers shared by the integer-based engines.

Both the packed and the bit-plane engines snapshot the design's
per-flop chains into packed integers before a pass and write the
corrected integers back afterwards; these helpers are the single
implementation of that boundary (bit ``i`` of a packed chain state is
the flop at scan position ``i``; unknown flops have a 0 known bit and a
0 state bit, matching the monitors' treat-X-as-0 rule).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.circuit.scan import ScanChain
from repro.fastpath.packed_chain import pack_state


def pack_chains(chains: Sequence[ScanChain]) -> Tuple[List[int], List[int]]:
    """Snapshot the chains into packed ``(states, knowns)`` integers."""
    states: List[int] = []
    knowns: List[int] = []
    for chain in chains:
        state, known = pack_state([flop.q for flop in chain.flops])
        states.append(state)
        knowns.append(known)
    return states, knowns


def write_back_chains(chains: Sequence[ScanChain], old_states: Sequence[int],
                      old_knowns: Sequence[int],
                      new_states: Sequence[int]) -> None:
    """Write packed decode results back into the flop objects.

    Only bits that changed value (or were unknown and are now driven to
    a known value) are touched, so a clean decode pass costs no
    per-flop writes at all.
    """
    if not chains:
        return
    full = (1 << len(chains[0])) - 1
    for chain, old, known, new in zip(chains, old_states, old_knowns,
                                      new_states):
        stale = (old ^ new) | (full & ~known)
        if not stale:
            continue
        flops = chain.flops
        while stale:
            low = stale & -stale
            stale ^= low
            i = low.bit_length() - 1
            flops[i].force((new >> i) & 1)


def replicate_states(states: Sequence[int], chain_length: int,
                     full: int) -> List[List[int]]:
    """Broadcast packed chain states into bit planes (every sequence of
    the batch starts from the same state).

    ``planes[c][i]`` is scan position ``i`` of chain ``c``: ``full``
    (all sequences 1) where the state bit is set, 0 otherwise.
    """
    return [[full if (state >> i) & 1 else 0 for i in range(chain_length)]
            for state in states]


def planes_from_states(per_sequence_states: Sequence[Sequence[int]],
                       chain_length: int) -> List[List[int]]:
    """Transpose per-sequence packed chain states into bit planes.

    ``per_sequence_states[b][c]`` is sequence ``b``'s packed state of
    chain ``c``; the result is indexed ``planes[c][i]`` with bit ``b``
    belonging to sequence ``b``.  O(total set bits) -- intended for
    tests and adapters, not hot loops (hot paths generate plane-form
    state directly).
    """
    if not per_sequence_states:
        raise ValueError("at least one sequence is required")
    num_chains = len(per_sequence_states[0])
    planes = [[0] * chain_length for _ in range(num_chains)]
    for b, states in enumerate(per_sequence_states):
        bit = 1 << b
        for c, state in enumerate(states):
            chain_planes = planes[c]
            remaining = state
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                chain_planes[low.bit_length() - 1] |= bit
    return planes


def states_from_planes(planes: Sequence[Sequence[int]],
                       sequence: int) -> List[int]:
    """Collapse one sequence's packed chain states out of bit planes."""
    bit = 1 << sequence
    return [sum(1 << i for i, plane in enumerate(chain_planes)
                if plane & bit)
            for chain_planes in planes]


__all__ = [
    "pack_chains",
    "write_back_chains",
    "replicate_states",
    "planes_from_states",
    "states_from_planes",
]
