"""Numba-fused single-pass summary kernels (``engine="jit"``).

The simd summary pass is bound by materialising full ``(chains,
length, words)`` intermediates per stage: replicate, encode, inject,
decode, correct and compare each walk the whole batch through its own
ndarray (and the sparse-delta path, while O(#flips), still pays an
argsort plus half a dozen gather/reduceat passes over the flip
coordinates).  This engine fuses the entire pass into **one loop nest
per sequence**: every registered code is linear over GF(2) and the
stored check words derive from the same replicated baseline, so --
exactly the superposition argument of :mod:`repro.engines.delta` -- a
sequence's verdicts are a pure function of its flip coordinates.  The
kernel walks each sequence's CSR flip slice once, accumulates the
touched decode slices' extended syndromes in per-sequence scratch (a
handful of entries, never a batch-shaped array), looks up the verdicts,
folds the correction feedback into the state delta and emits the
detected/uncorrectable/correction/residual counters directly.  No
temporaries, no sorts, no per-stage batch walks; ``parallel=True``
distributes the ``prange`` over sequences across cores.

Because the superposition identity holds at *every* density, the fused
kernel serves both sides of the simd engine's delta/dense crossover --
cost is O(#flips) with a tiny constant, and there is nothing dense
batches can amortise against it.  The dense word pipeline remains the
fallback for bank structures superposition cannot express (correcting
blocks sharing chains, whose last-block-wins replay is
order-dependent); there the engine inherits the numpy path.

**Gating.**  The kernels are written in nopython-compatible Python and
wrapped with ``numba.njit(parallel=True, cache=True)`` only when numba
is importable (the ``[jit]`` packaging extra); the registry then lists
``engine="jit"`` -- gated exactly like ``[simd]``/CuPy, silently
absent otherwise.  The *uncompiled* functions remain first-class:
``JitFusedEngine(compiled=False)`` executes the identical kernel logic
through the interpreter, which is how the bit-identity property suite
(``tests/engines/test_jit_equivalence.py``) covers every code family,
geometry, batch size and density even on installs without numba.

**Warm-up.**  ``cache=True`` makes compilation a once-per-machine
cost, but the *first* call of a fresh process still pays the cache
load (or, on a cold machine, the full compile).  :func:`warm_up_kernels`
is the process-wide hook that moves that latency out of timed or
checkpointed campaign chunks: it runs the compiled kernel once on a
one-sequence synthetic input and latches a module flag.  Engine
construction invokes it (idempotently), so sharded workers -- which
build their design, and with it the engine, at the top of each chunk
-- have fully-warm kernels before the first batch of the first chunk
hits the summary pass; benchmark harnesses call it explicitly before
starting clocks.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.engines.base import BatchOutcomeArrays
from repro.engines.simd import SimdBatchedEngine

try:  # pragma: no cover - exercised only where numba is installed
    import numba
    from numba import prange
except ImportError:
    numba = None
    prange = range

NUMBA_VERSION: Optional[str] = getattr(numba, "__version__", None)

#: Summary paths this engine accepts (superset of the simd engine's).
JIT_SUMMARY_PATHS = ("auto", "jit", "delta", "dense")


# ----------------------------------------------------------------------
# The fused kernel (nopython-compatible Python)
# ----------------------------------------------------------------------
def _fused_summary(starts, cells, chain_monitor, chain_col, mon_width,
                   mon_k, mon_group, mon_chain, lut_table, known_flat,
                   obs_cols, length, unknown_positions, detected,
                   uncorrectable, corrections, residuals):
    """One pass from flip coordinates to campaign counters.

    ``starts``/``cells`` are the batch's CSR flip slices (sorted,
    known-gated, per-sequence-deduplicated -- the contract of
    :func:`repro.faults.batch.pattern_batch_csr`); the remaining inputs
    are the :class:`_JitPlan` tables.  All four output arrays are fully
    overwritten.  The per-sequence scratch arrays are bounded by the
    sequence's own flip count ``nf``: a flip touches exactly one decode
    slice (correcting blocks never share chains on this path), each
    touched slice yields at most one correction, and the state delta is
    the symmetric difference of flip and correction cells -- so
    ``nf``-sized buffers always suffice.
    """
    batch_size = starts.shape[0] - 1
    num_obs = obs_cols.shape[0]
    for b in prange(batch_size):
        lo = starts[b]
        hi = starts[b + 1]
        nf = hi - lo
        det = False
        unc = False
        corr = np.int64(0)
        resid = unknown_positions
        if nf > 0:
            # -- accumulate per touched decode slice's syndrome -------
            slice_mon = np.empty(nf, dtype=np.int64)
            slice_pos = np.empty(nf, dtype=np.int64)
            slice_syn = np.empty(nf, dtype=np.int64)
            n_slices = 0
            for f in range(lo, hi):
                cell = cells[f]
                chain = cell // length
                m = chain_monitor[chain]
                if m < 0:
                    continue
                pos = cell - chain * length
                col = chain_col[chain]
                found = False
                for s in range(n_slices):
                    if slice_mon[s] == m and slice_pos[s] == pos:
                        slice_syn[s] ^= col
                        found = True
                        break
                if not found:
                    slice_mon[n_slices] = m
                    slice_pos[n_slices] = pos
                    slice_syn[n_slices] = col
                    n_slices += 1
            # -- verdicts + correction feedback cells -----------------
            corr_cells = np.empty(nf, dtype=np.int64)
            n_corr = 0
            for s in range(n_slices):
                syn = slice_syn[s]
                if syn == 0:
                    continue
                det = True
                m = slice_mon[s]
                verdict = lut_table[mon_group[m], syn]
                width = mon_width[m]
                if verdict == -2 or (verdict >= width
                                     and verdict < mon_k[m]):
                    unc = True
                elif verdict >= 0 and verdict < width:
                    corr += 1
                    corr_cells[n_corr] = (mon_chain[m, verdict] * length
                                          + slice_pos[s])
                    n_corr += 1
            # -- net state delta: flips XOR corrections ---------------
            delta_cells = np.empty(nf + n_corr, dtype=np.int64)
            nd = 0
            for f in range(lo, hi):
                cell = cells[f]
                cancelled = False
                for c in range(n_corr):
                    if corr_cells[c] == cell:
                        cancelled = True
                        break
                if not cancelled:
                    delta_cells[nd] = cell
                    nd += 1
            for c in range(n_corr):
                cell = corr_cells[c]
                injected_here = False
                for f in range(lo, hi):
                    if cells[f] == cell:
                        injected_here = True
                        break
                if not injected_here:
                    delta_cells[nd] = cell
                    nd += 1
            # -- residual comparator + stream (CRC) verdicts ----------
            for d in range(nd):
                if known_flat[delta_cells[d]]:
                    resid += 1
            for o in range(num_obs):
                signature = np.uint64(0)
                for d in range(nd):
                    signature ^= obs_cols[o, delta_cells[d]]
                if signature != np.uint64(0):
                    det = True
                    unc = True
        detected[b] = det
        uncorrectable[b] = unc
        corrections[b] = corr
        residuals[b] = resid


if numba is not None:  # pragma: no cover - exercised only with numba
    _fused_summary_compiled = numba.njit(parallel=True, cache=True)(
        _fused_summary)
else:
    _fused_summary_compiled = None


# ----------------------------------------------------------------------
# Process-wide warm-up
# ----------------------------------------------------------------------
_WARMED = False


def warm_up_kernels(force: bool = False) -> bool:
    """Trigger (or load from ``cache=True``) the kernel compilation
    once per process, outside any timed chunk.

    Returns ``True`` when the compiled kernels are warm, ``False`` when
    numba is not installed (a silent no-op: the pure-Python kernels
    need no warm-up).  Idempotent -- later calls return immediately --
    so every entry point may invoke it defensively; ``force=True``
    re-runs the synthetic call (test hook).
    """
    global _WARMED
    if _fused_summary_compiled is None:
        return False
    if _WARMED and not force:
        return True
    # A one-sequence, one-flip synthetic input that touches every
    # kernel branch family: one covered chain, one correcting monitor,
    # one stream column.
    _fused_summary_compiled(
        np.array([0, 1], dtype=np.int64),          # starts
        np.array([0], dtype=np.int64),             # cells
        np.array([0], dtype=np.int64),             # chain_monitor
        np.array([1], dtype=np.int64),             # chain_col
        np.array([1], dtype=np.int64),             # mon_width
        np.array([1], dtype=np.int64),             # mon_k
        np.array([0], dtype=np.int64),             # mon_group
        np.array([[0]], dtype=np.int64),           # mon_chain
        np.array([[-1, 0]], dtype=np.int64),       # lut_table
        np.array([True], dtype=bool),              # known_flat
        np.array([[1]], dtype=np.uint64),          # obs_cols
        np.int64(1),                               # length
        np.int64(0),                               # unknown_positions
        np.zeros(1, dtype=bool),                   # detected
        np.zeros(1, dtype=bool),                   # uncorrectable
        np.zeros(1, dtype=np.int64),               # corrections
        np.zeros(1, dtype=np.int64))               # residuals
    _WARMED = True
    return True


# ----------------------------------------------------------------------
# The per-engine plan (delta-plan tables in kernel-ready dtypes)
# ----------------------------------------------------------------------
class _JitPlan:
    """The engine's :class:`~repro.engines.delta.DeltaPlan` tables
    re-materialised for the kernel's type discipline: every index and
    syndrome table is int64 (numba promotes mixed uint/int arithmetic
    to float64, which would corrupt the XOR algebra), the per-group
    verdict LUTs are padded into one 2D table, and the stream columns
    are stacked into one ``(O, num_cells)`` uint64 array."""

    __slots__ = ("chain_monitor", "chain_col", "mon_width", "mon_k",
                 "mon_group", "mon_chain", "lut_table", "obs_cols")

    def __init__(self, plan) -> None:
        self.chain_monitor = np.ascontiguousarray(plan.chain_monitor,
                                                  dtype=np.int64)
        self.chain_col = np.ascontiguousarray(plan.chain_col,
                                              dtype=np.int64)
        self.mon_width = np.ascontiguousarray(plan.mon_width,
                                              dtype=np.int64)
        self.mon_k = np.ascontiguousarray(plan.mon_k, dtype=np.int64)
        self.mon_group = np.ascontiguousarray(plan.mon_group,
                                              dtype=np.int64)
        mon_chain = np.ascontiguousarray(plan.mon_chain, dtype=np.int64)
        if mon_chain.ndim != 2 or mon_chain.shape[1] == 0:
            mon_chain = np.zeros((mon_chain.shape[0], 1), dtype=np.int64)
        self.mon_chain = mon_chain
        width = max((lut.shape[0] for lut in plan.luts), default=1)
        lut_table = np.full((len(plan.luts), width), -2, dtype=np.int64)
        for g, lut in enumerate(plan.luts):
            lut_table[g, :lut.shape[0]] = lut
        self.lut_table = lut_table
        num_cells = plan.num_chains * plan.chain_length
        obs_cols = np.zeros((len(plan.obs_cols), num_cells),
                            dtype=np.uint64)
        for o, column in enumerate(plan.obs_cols):
            obs_cols[o] = column
        self.obs_cols = obs_cols


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class JitFusedEngine(SimdBatchedEngine):
    """The word-packed engine with the summary pass replaced by the
    fused single-pass kernels.

    Parameters
    ----------
    bank, num_chains, chain_length:
        As :class:`~repro.engines.simd.SimdBatchedEngine` (the scalar
        and bit-plane batch interfaces are inherited unchanged, so the
        engine is a drop-in everywhere the registry is consulted).
    compiled:
        ``None`` (default) uses the njit-compiled kernels when numba is
        importable and the pure-Python fallback otherwise; ``True``
        requires numba (``ImportError`` without it); ``False`` forces
        the interpreter path -- the bit-identity property suite's mode,
        byte-for-byte the same kernel logic.

    ``run_batch_summary`` accepts ``path`` values ``"auto"`` / ``"jit"``
    / ``"delta"`` / ``"dense"``: the inherited numpy paths stay
    selectable for A/B comparison, ``"auto"`` takes the fused kernel
    whenever the bank structure supports superposition (falling back to
    the dense word pipeline otherwise), and the path actually taken is
    published as ``last_summary_path`` (``"jit"`` on the fused path).
    """

    def __init__(self, bank, num_chains: int, chain_length: int,
                 compiled: Optional[bool] = None):
        super().__init__(bank, num_chains, chain_length, backend=None)
        if compiled is None:
            compiled = _fused_summary_compiled is not None
        if compiled and _fused_summary_compiled is None:
            raise ImportError(
                "engine 'jit' was asked for compiled kernels but numba "
                "is not importable; install the [jit] packaging extra")
        self.compiled = bool(compiled)
        self._kernel = (_fused_summary_compiled if self.compiled
                        else _fused_summary)
        self._jit_plan: Optional[_JitPlan] = None
        # Pay the once-per-process compile (or on-disk cache load) at
        # construction -- before any timed/checkpointed chunk reaches
        # the summary pass.
        if self.compiled:
            warm_up_kernels()

    # ------------------------------------------------------------------
    def run_batch_summary(self, states: Sequence[int],
                          knowns: Sequence[int], flips,
                          batch_size: int,
                          path: str = "auto") -> BatchOutcomeArrays:
        """The summary pass through the fused kernels.

        Same contract as the simd engine's, plus the ``"jit"`` path
        name: ``"auto"`` runs the fused kernel when the structure
        supports superposition (any density -- the identity is exact,
        so there is no crossover to manage) and otherwise falls back to
        the inherited dense pipeline; ``"jit"`` forces the kernel
        (``ValueError`` on unsupported structures, mirroring
        ``"delta"``); ``"delta"`` / ``"dense"`` select the inherited
        numpy implementations for A/B comparison.  All paths are
        bit-identical (property-tested).
        """
        if path not in JIT_SUMMARY_PATHS:
            raise ValueError(
                f"unknown summary path {path!r}; choose one of "
                f"{JIT_SUMMARY_PATHS}")
        if path in ("delta", "dense"):
            return super().run_batch_summary(states, knowns, flips,
                                             batch_size, path=path)
        plan = self._delta_plan_for()
        if not plan.supported:
            if path == "jit":
                raise ValueError(
                    f"summary path 'jit' is unavailable for this "
                    f"monitor bank: {plan.reason}")
            return super().run_batch_summary(states, knowns, flips,
                                             batch_size, path="dense")
        from repro.engines.summary import bits_matrix
        from repro.faults.batch import (
            PatternBatch,
            batch_flips_csr,
            pattern_batch_csr,
        )

        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        if len(states) != self.num_chains or len(knowns) != self.num_chains:
            raise ValueError(
                f"expected {self.num_chains} chain states, got "
                f"{len(states)}")
        known_bits = bits_matrix(knowns, self.chain_length)
        if isinstance(flips, PatternBatch):
            starts, cells, injected = pattern_batch_csr(
                flips, known_bits, batch_size,
                starts_out=self._workspace.take(
                    "jit_starts", (batch_size + 1,), np.int64))
        else:
            starts, cells, injected = batch_flips_csr(
                flips, knowns, batch_size, self.chain_length,
                starts_out=self._workspace.take(
                    "jit_starts", (batch_size + 1,), np.int64))
        if self._jit_plan is None:
            self._jit_plan = _JitPlan(plan)
        jp = self._jit_plan
        unknown_positions = int(known_bits.size) - int(known_bits.sum())
        # The outcome arrays escape into the returned
        # BatchOutcomeArrays (campaign code may hold several batches'
        # results at once), so they are freshly allocated -- only
        # internal scratch (the CSR starts above) rides the workspace.
        detected = np.zeros(batch_size, dtype=bool)
        uncorrectable = np.zeros(batch_size, dtype=bool)
        corrections = np.zeros(batch_size, dtype=np.int64)
        residuals = np.zeros(batch_size, dtype=np.int64)
        self._kernel(starts, cells, jp.chain_monitor, jp.chain_col,
                     jp.mon_width, jp.mon_k, jp.mon_group, jp.mon_chain,
                     jp.lut_table, known_bits.reshape(-1), jp.obs_cols,
                     np.int64(self.chain_length),
                     np.int64(unknown_positions), detected,
                     uncorrectable, corrections, residuals)
        self.last_summary_path = "jit"
        return BatchOutcomeArrays(
            injected=injected.astype(np.int64),
            detected=detected,
            uncorrectable=uncorrectable,
            residual_errors=residuals,
            corrections_applied=corrections)


__all__ = [
    "JIT_SUMMARY_PATHS",
    "JitFusedEngine",
    "NUMBA_VERSION",
    "warm_up_kernels",
]
