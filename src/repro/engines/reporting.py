"""Shared batch-decode result assembly for the batched engines.

Both the bit-plane engine (:mod:`repro.engines.bitplane`) and the
numpy SIMD engine (:mod:`repro.engines.simd`) finish a batched decode
pass with the same bookkeeping: per-monitor detection/uncorrectable
sequence masks, per-sequence correction events and bad-slice lists.
This module is the single implementation of turning that bookkeeping
into a :class:`~repro.engines.base.BatchDecodeResult` with the exact
report layout of the reference engine -- clean sequences share one
cached report tuple, error-carrying sequences get materialised
:class:`~repro.core.monitor.MonitorReport` objects in the bank's block
order.

This is the **object path**: it exists for consumers that inspect
per-sequence reports and correction events (the scalar cycle, the
testbench result log, debugging).  Campaign statistics never read the
reports -- they reduce to a handful of counters -- so the engines also
implement the columnar *summary path*
(:meth:`~repro.engines.base.SimulationEngine.run_batch_summary`, with
the shared array kernels in :mod:`repro.engines.summary`), which skips
this module entirely; report materialisation then happens only where
something actually consumes the objects.

Bookkeeping layout (keyed by ``id(monitor_wrapper)``, the wrappers
produced by :func:`repro.fastpath.engine.classify_monitors`):

* ``block_results[id] = (detected_mask, uncorrectable_mask,
  corrections, bad_slices)`` where the masks are batch-sequence bit
  masks, ``corrections`` maps sequence index to its
  :class:`~repro.core.corrector.CorrectionEvent` list (cycle order)
  and ``bad_slices`` maps sequence index to its cycle list;
* ``stream_results[id] = mismatch_mask``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.monitor import MonitorReport
from repro.engines.base import BatchDecodeResult


def clean_report_tuple(
        order: Sequence[Tuple[str, object]]) -> Tuple[MonitorReport, ...]:
    """One cached all-clean report tuple in the bank's block order."""
    return tuple(
        MonitorReport(block_index=monitor.block.block_index,
                      error_detected=False)
        for _kind, monitor in order)


def assemble_batch_result(order: Sequence[Tuple[str, object]],
                          clean: Tuple[MonitorReport, ...],
                          block_results: Dict[int, tuple],
                          stream_results: Dict[int, int],
                          corrected: List[List[int]],
                          batch_size: int) -> BatchDecodeResult:
    """Assemble the engine-independent batch result; see the module
    docstring for the bookkeeping layout.

    Assembly cost is proportional to the number of *error events*, not
    ``batch_size x blocks``: detected sequences start as one copy of
    the clean tuple and only the blocks that actually reported get a
    materialised report written over their slot.  Stream-mismatch
    reports carry no per-sequence payload, so one instance per monitor
    is shared by every mismatching sequence of the batch (reports are
    frozen).  Dense-error batches -- where every sequence is detected
    -- stay dominated by the per-event work instead of per-sequence
    report construction.
    """
    detected_mask = 0
    uncorrectable_mask = 0
    for det, unc, _corr, _bad in block_results.values():
        detected_mask |= det
        uncorrectable_mask |= unc
    for mismatch in stream_results.values():
        detected_mask |= mismatch
        uncorrectable_mask |= mismatch

    corrections_count: Dict[int, int] = {}
    for _det, _unc, corr, _bad in block_results.values():
        for b, events in corr.items():
            corrections_count[b] = corrections_count.get(b, 0) \
                + len(events)

    reports: List[Tuple[MonitorReport, ...]] = [clean] * batch_size
    rows: Dict[int, List[MonitorReport]] = {}
    remaining = detected_mask
    while remaining:
        low = remaining & -remaining
        remaining ^= low
        rows[low.bit_length() - 1] = list(clean)

    for slot, (kind, monitor) in enumerate(order):
        if kind == "block":
            det, unc, corr, bad = block_results[id(monitor)]
            block_index = monitor.block.block_index
            remaining = det
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                b = low.bit_length() - 1
                # Positional construction: report creation is the hot
                # term of dense batches (fields: block_index,
                # error_detected, corrections, uncorrectable,
                # slices_with_errors).
                rows[b][slot] = MonitorReport(
                    block_index, True, tuple(corr.get(b, ())),
                    bool(unc & low), tuple(bad.get(b, ())))
        else:
            remaining = stream_results[id(monitor)]
            if not remaining:
                continue
            mismatch_report = MonitorReport(
                monitor.block.block_index, True, (), True)
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                rows[low.bit_length() - 1][slot] = mismatch_report

    for b, row in rows.items():
        reports[b] = tuple(row)

    return BatchDecodeResult(
        reports=reports,
        corrected=corrected,
        detected_mask=detected_mask,
        uncorrectable_mask=uncorrectable_mask,
        corrections=corrections_count)


__all__ = ["clean_report_tuple", "assemble_batch_result"]
