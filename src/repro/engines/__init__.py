"""Pluggable simulation engines for the monitored sleep/wake passes.

The subsystem has three parts:

* :mod:`repro.engines.base` -- the :class:`SimulationEngine` protocol
  (scalar ``encode_pass``/``decode_pass`` plus an optional bit-plane
  batch interface advertised through :class:`EngineCapabilities`);
* :mod:`repro.engines.registry` -- name-based registration and lookup,
  mirroring :mod:`repro.codes.registry`; registering a factory is the
  only step needed for an engine to be selectable everywhere;
* the built-in engines: ``"reference"`` (bit-serial per-flop models),
  ``"packed"`` (packed-integer fast path,
  :mod:`repro.engines.packed`), ``"batched"`` (bit-plane batch engine
  simulating B sequences per pass, :mod:`repro.engines.bitplane`),
  ``"simd"`` (numpy word-packed fully vectorised batch engine,
  :mod:`repro.engines.simd`; registered only when numpy is importable
  -- the ``[simd]`` packaging extra), and ``"jit"`` (the simd engine
  with the summary pass replaced by Numba-fused single-pass kernels,
  :mod:`repro.engines.jit`; registered only when numba is importable
  -- the ``[jit]`` extra).

The batch engines share their result assembly
(:mod:`repro.engines.reporting`) and the GF(2) code matrices of
:mod:`repro.codes.plane`, so a report produced by any engine is
bit-identical to the reference's.  Engines advertising the *summary*
capability additionally run whole batches through
:meth:`SimulationEngine.run_batch_summary`, returning columnar
:class:`BatchOutcomeArrays` (one ndarray per outcome field) with no
per-sequence objects at all -- the campaign fast path; the shared
vectorised helpers live in :mod:`repro.engines.summary`.

The array namespace behind the array-native engines is itself
pluggable (:mod:`repro.engines.backend`, the ``xp`` convention):
``"numpy"`` is the default backend, and ``"cuda"`` -- the same
word-packed engine on CuPy arrays, selectable as ``engine="cuda"`` --
registers automatically when CuPy is importable, gated exactly like
the ``[simd]`` extra.

See the README's "Engine architecture" section for when to pick which
engine and how to register a custom one.
"""

from repro.engines.backend import (
    ArrayBackend,
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.engines.base import (
    BatchDecodeResult,
    BatchOutcomeArrays,
    EngineCapabilities,
    SimulationEngine,
)
from repro.engines.registry import (
    available_engines,
    get_engine,
    register_engine,
    unregister_engine,
    validate_engine,
)

__all__ = [
    "ArrayBackend",
    "BatchDecodeResult",
    "BatchOutcomeArrays",
    "EngineCapabilities",
    "SimulationEngine",
    "available_backends",
    "available_engines",
    "get_backend",
    "get_engine",
    "register_backend",
    "register_engine",
    "unregister_backend",
    "unregister_engine",
    "validate_engine",
]
