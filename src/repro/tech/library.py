"""Standard-cell library model (120 nm class).

Each :class:`Cell` carries the three numbers the cost estimators need:

* ``area_um2`` -- layout area in square micrometres;
* ``switching_energy_fj`` -- energy per output toggle in femtojoules
  (internal + load energy at nominal voltage);
* ``leakage_nw`` -- static leakage in nanowatts.

The default :data:`ST120NM_CELLS` values are representative of a 120 nm
general-purpose library (the technology the paper synthesised into).
They were chosen so that the 32x32 FIFO case study lands near the
paper's reported base area (~72 kum^2 for 1040 registers plus read/write
logic) and so that scan shifting of ~1000 flops at 100 MHz dissipates a
few milliwatts --- the same ballpark as the paper's Tables I and II.
Only relative accuracy matters for reproducing the paper's trends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional


@dataclass(frozen=True)
class Cell:
    """One standard-cell entry."""

    name: str
    area_um2: float
    switching_energy_fj: float
    leakage_nw: float

    def __post_init__(self) -> None:
        if self.area_um2 < 0 or self.switching_energy_fj < 0 or self.leakage_nw < 0:
            raise ValueError(f"cell {self.name!r} has negative parameters")


#: Representative 120 nm cell parameters.
#: Area values are in um^2, switching energies in fJ per output toggle,
#: leakage in nW per cell.
ST120NM_CELLS: Dict[str, Cell] = {
    # Combinational cells.
    "inv": Cell("inv", 5.0, 2.0, 0.6),
    "buf": Cell("buf", 6.5, 2.6, 0.8),
    "and2": Cell("and2", 8.0, 3.2, 1.0),
    "nand2": Cell("nand2", 6.5, 2.8, 0.9),
    "or2": Cell("or2", 8.0, 3.2, 1.0),
    "nor2": Cell("nor2", 6.5, 2.8, 0.9),
    "xor2": Cell("xor2", 12.0, 4.5, 1.4),
    "xnor2": Cell("xnor2", 12.0, 4.5, 1.4),
    "mux2": Cell("mux2", 11.0, 4.0, 1.3),
    "mux3": Cell("mux3", 18.0, 6.0, 2.0),
    "aoi22": Cell("aoi22", 10.0, 3.8, 1.2),
    # Sequential cells.
    "dff": Cell("dff", 36.0, 38.0, 4.0),
    # Scan (mux-D) flip-flop: a DFF plus an input mux.
    "sdff": Cell("sdff", 45.0, 42.0, 4.6),
    # Retention scan flip-flop: scan DFF plus the always-on high-Vt
    # balloon latch and the RETAIN routing (paper Fig. 1).
    "rsdff": Cell("rsdff", 58.0, 46.0, 3.2),
    # Always-on latch used for small storage inside the monitoring block.
    "ret_latch": Cell("ret_latch", 26.0, 20.0, 1.6),
    # Always-on flip-flop used for parity/signature storage inside the
    # monitoring block (must survive sleep, like the retention latch).
    # Its clock is gated per monitoring block, hence the low switching
    # energy relative to a functional flop.
    "aon_dff": Cell("aon_dff", 60.0, 20.0, 2.5),
    # Header (sleep) switch transistor footprint.
    "pswitch": Cell("pswitch", 14.0, 0.0, 1.5),
}


class StandardCellLibrary:
    """A named collection of :class:`Cell` entries.

    Parameters
    ----------
    name:
        Library name (e.g. ``"st120nm"``).
    cells:
        Mapping from cell name to :class:`Cell`.
    """

    def __init__(self, name: str, cells: Mapping[str, Cell]):
        if not cells:
            raise ValueError("a cell library cannot be empty")
        self.name = name
        self._cells: Dict[str, Cell] = dict(cells)

    def cell(self, name: str) -> Cell:
        """Look up a cell by name; raises ``KeyError`` for unknown cells."""
        if name not in self._cells:
            raise KeyError(
                f"cell {name!r} not in library {self.name!r}; "
                f"known cells: {sorted(self._cells)}")
        return self._cells[name]

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def cell_names(self) -> Iterable[str]:
        """All cell names in the library."""
        return sorted(self._cells)

    def add_cell(self, cell: Cell) -> None:
        """Add or replace a cell entry."""
        self._cells[cell.name] = cell

    def scaled(self, name: str, area_scale: float = 1.0,
               energy_scale: float = 1.0,
               leakage_scale: float = 1.0) -> "StandardCellLibrary":
        """Return a copy with all cells scaled by the given factors.

        Useful for quick what-if studies (e.g. "how would the trade-off
        look in a lower-leakage process?") and for sensitivity tests in
        the benchmark suite.
        """
        scaled_cells = {
            cname: Cell(cname,
                        c.area_um2 * area_scale,
                        c.switching_energy_fj * energy_scale,
                        c.leakage_nw * leakage_scale)
            for cname, c in self._cells.items()
        }
        return StandardCellLibrary(name, scaled_cells)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StandardCellLibrary({self.name!r}, cells={len(self._cells)})"


_DEFAULT: Optional[StandardCellLibrary] = None


def default_library() -> StandardCellLibrary:
    """The shared default 120 nm library instance."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = StandardCellLibrary("st120nm", ST120NM_CELLS)
    return _DEFAULT


__all__ = ["Cell", "StandardCellLibrary", "ST120NM_CELLS", "default_library"]
