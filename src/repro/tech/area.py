"""Structural area estimation.

Area is a straight roll-up of cell instances priced with the standard
cell library, grouped by the netlist's ``group`` labels so that the
protection circuitry ("monitor", "corrector", "controller",
"scan_routing") can be reported separately from the protected design ---
this is exactly how the paper reports area *overhead* relative to the
bare FIFO.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.circuit.netlist import Netlist
from repro.tech.library import StandardCellLibrary, default_library

#: Group labels considered part of the protection circuitry (everything
#: added around the original power-gated design by the synthesis flow).
PROTECTION_GROUPS = ("monitor", "corrector", "controller", "scan_routing")


@dataclass(frozen=True)
class AreaBreakdown:
    """Area report split by netlist group.

    All areas are in square micrometres.
    """

    by_group: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Total area across all groups."""
        return sum(self.by_group.values())

    def group(self, name: str) -> float:
        """Area of one group (0 when the group is absent)."""
        return self.by_group.get(name, 0.0)

    @property
    def protection_area(self) -> float:
        """Area of the added monitoring/correction/control circuitry."""
        return sum(self.by_group.get(g, 0.0) for g in PROTECTION_GROUPS)

    @property
    def base_area(self) -> float:
        """Area of everything that is not protection circuitry."""
        return self.total - self.protection_area

    @property
    def overhead_fraction(self) -> float:
        """Protection area as a fraction of the base design area.

        This is the paper's "%" column: e.g. 2.8 %--9.2 % for CRC-16
        monitoring of the 32x32 FIFO, 68 %--87 % for Hamming(7,4).
        """
        base = self.base_area
        if base <= 0:
            return 0.0
        return self.protection_area / base

    def merged_with(self, other: "AreaBreakdown") -> "AreaBreakdown":
        """Combine two breakdowns group-wise."""
        merged = dict(self.by_group)
        for group, area in other.by_group.items():
            merged[group] = merged.get(group, 0.0) + area
        return AreaBreakdown(by_group=merged)


class AreaEstimator:
    """Prices netlists with a standard-cell library.

    Parameters
    ----------
    library:
        The cell library to price with; defaults to the 120 nm model.
    """

    def __init__(self, library: Optional[StandardCellLibrary] = None):
        self.library = library if library is not None else default_library()

    def cell_area(self, cell_name: str) -> float:
        """Area of a single cell instance."""
        return self.library.cell(cell_name).area_um2

    def netlist_area(self, netlist: Netlist,
                     group: Optional[str] = None) -> float:
        """Total area of a netlist (optionally restricted to one group)."""
        total = 0.0
        for cell, count in netlist.cell_counts(group).items():
            total += self.cell_area(cell) * count
        return total

    def breakdown(self, netlist: Netlist) -> AreaBreakdown:
        """Per-group area breakdown of a netlist."""
        by_group: Dict[str, float] = {}
        for group in netlist.groups():
            by_group[group] = self.netlist_area(netlist, group)
        return AreaBreakdown(by_group=by_group)

    def breakdown_of(self, netlists: Iterable[Netlist]) -> AreaBreakdown:
        """Combined breakdown of several netlists."""
        result = AreaBreakdown(by_group={})
        for netlist in netlists:
            result = result.merged_with(self.breakdown(netlist))
        return result


__all__ = ["AreaEstimator", "AreaBreakdown", "PROTECTION_GROUPS"]
