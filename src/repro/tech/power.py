"""Activity-based dynamic power estimation.

The paper obtains encode/decode power from PrimeTime PX on a gate-level
simulation; it also observes that "the majority of the encoding and
decoding power is due to scan chains switching which is common in both
implementations" --- which is why Hamming's power is only 20--40 %
higher than CRC's despite a much larger area.

The estimator used here reproduces that structure directly: every cell
instance contributes ``activity x switching_energy x f_clk``, where the
activity factor is chosen per netlist group:

* scan/retention flip-flops shift every cycle during encode/decode, so
  their activity is ~1 (clock pin plus data toggling);
* the monitoring block's parity storage shifts too, but behind a gated
  clock (lower effective energy per cycle -- captured in the ``aon_dff``
  cell's energy);
* the protected design's combinational logic sees its inputs wiggle as
  the state shifts by, at a reduced activity;
* idle groups contribute only leakage (not modelled here; see
  :mod:`repro.power.leakage`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.circuit.netlist import Netlist
from repro.tech.library import StandardCellLibrary, default_library

#: Default switching-activity factors per netlist group during scan-mode
#: encode/decode.  Sequential cells dominate; combinational activity is
#: secondary ripple.
DEFAULT_SCAN_ACTIVITY: Dict[str, float] = {
    "fifo": 1.0,
    "core": 1.0,
    "monitor": 1.0,
    "corrector": 0.3,
    "controller": 0.5,
    "scan_routing": 1.0,
}

#: Activity factor applied to any group not listed explicitly.
FALLBACK_ACTIVITY = 0.5

#: Combinational cells switch less than sequential cells during scan
#: shifting (they are not on the shift path); this factor derates them.
COMBINATIONAL_DERATING = 0.4

#: Cell names treated as sequential (full per-cycle clock+data activity).
SEQUENTIAL_CELLS = frozenset(
    {"dff", "sdff", "rsdff", "aon_dff", "ret_latch"})


@dataclass(frozen=True)
class PowerBreakdown:
    """Dynamic power report split by netlist group (watts)."""

    by_group: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Total dynamic power in watts."""
        return sum(self.by_group.values())

    @property
    def total_mw(self) -> float:
        """Total dynamic power in milliwatts."""
        return self.total * 1e3

    def group(self, name: str) -> float:
        """Power of one group in watts (0 when absent)."""
        return self.by_group.get(name, 0.0)

    def merged_with(self, other: "PowerBreakdown") -> "PowerBreakdown":
        """Combine two breakdowns group-wise."""
        merged = dict(self.by_group)
        for group, power in other.by_group.items():
            merged[group] = merged.get(group, 0.0) + power
        return PowerBreakdown(by_group=merged)


class PowerEstimator:
    """Activity x energy x frequency dynamic power estimator.

    Parameters
    ----------
    library:
        Standard-cell library providing per-toggle switching energies.
    clock_hz:
        Clock frequency during encode/decode (paper: 100 MHz).
    """

    def __init__(self, library: Optional[StandardCellLibrary] = None,
                 clock_hz: float = 100e6):
        if clock_hz <= 0:
            raise ValueError("clock frequency must be positive")
        self.library = library if library is not None else default_library()
        self.clock_hz = clock_hz

    def cell_power(self, cell_name: str, activity: float) -> float:
        """Dynamic power of one cell instance at the given activity (W)."""
        energy_j = self.library.cell(cell_name).switching_energy_fj * 1e-15
        return activity * energy_j * self.clock_hz

    def _activity_for(self, cell: str, group: str,
                      activities: Mapping[str, float]) -> float:
        base = activities.get(group, FALLBACK_ACTIVITY)
        if cell in SEQUENTIAL_CELLS:
            return base
        return base * COMBINATIONAL_DERATING

    def netlist_power(self, netlist: Netlist,
                      activities: Optional[Mapping[str, float]] = None
                      ) -> PowerBreakdown:
        """Per-group dynamic power of a netlist."""
        if activities is None:
            activities = DEFAULT_SCAN_ACTIVITY
        by_group: Dict[str, float] = {}
        for inst in netlist:
            activity = self._activity_for(inst.cell, inst.group, activities)
            power = self.cell_power(inst.cell, activity)
            by_group[inst.group] = by_group.get(inst.group, 0.0) + power
        return PowerBreakdown(by_group=by_group)

    def scan_mode_power(self, netlist: Netlist) -> PowerBreakdown:
        """Power during scan-mode encode/decode (default activities)."""
        return self.netlist_power(netlist, DEFAULT_SCAN_ACTIVITY)


__all__ = [
    "PowerEstimator",
    "PowerBreakdown",
    "DEFAULT_SCAN_ACTIVITY",
    "SEQUENTIAL_CELLS",
    "COMBINATIONAL_DERATING",
    "FALLBACK_ACTIVITY",
]
