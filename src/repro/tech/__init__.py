"""Technology and cost models.

The paper's cost numbers (Tables I--III, Fig. 9) come from a Synopsys
synthesis of the design in an STMicroelectronics 120 nm library, with
power from PrimeTime PX on a gate-level simulation.  This package
replaces that proprietary flow with:

* :mod:`repro.tech.library` -- a 120 nm-class standard-cell library
  model: per-cell area, leakage and switching energy;
* :mod:`repro.tech.area` -- structural area estimation of netlists and
  of the generated monitoring/correction/controller logic;
* :mod:`repro.tech.power` -- activity-based dynamic power estimation
  (scan-shift switching dominates encode/decode power, as the paper
  notes);
* :mod:`repro.tech.energy` -- encode/decode latency and energy
  calculations (latency = chain length x clock period; energy = power x
  latency).

Absolute numbers will not match the authors' silicon flow; the estimators
are calibrated so that the *relative* behaviour across scan-chain
configurations and codes --- which is what the paper's analysis is about
--- reproduces.
"""

from repro.tech.library import Cell, StandardCellLibrary, default_library, ST120NM_CELLS
from repro.tech.area import AreaEstimator, AreaBreakdown
from repro.tech.power import PowerEstimator, PowerBreakdown
from repro.tech.energy import EnergyCalculator, CodingCost

__all__ = [
    "Cell",
    "StandardCellLibrary",
    "default_library",
    "ST120NM_CELLS",
    "AreaEstimator",
    "AreaBreakdown",
    "PowerEstimator",
    "PowerBreakdown",
    "EnergyCalculator",
    "CodingCost",
]
