"""Encode/decode latency and energy calculations.

The paper's Section III states the governing identities:

* encoding (or decoding) latency is ``l x T`` --- the scan-chain length
  times the clock period, because the whole state must circulate once
  through the chains;
* energy is power times latency, so lengthening the chains (fewer,
  longer chains) raises energy even though the power barely changes.

:class:`EnergyCalculator` packages those identities together with the
power estimator so that one call yields the full (latency, power,
energy) triple reported per row of Tables I and II.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.circuit.netlist import Netlist
from repro.tech.power import PowerBreakdown, PowerEstimator


@dataclass(frozen=True)
class CodingCost:
    """Latency / power / energy of one encode or decode pass.

    Attributes
    ----------
    cycles:
        Number of clock cycles (the scan-chain length ``l``).
    clock_hz:
        Clock frequency used.
    power_w:
        Dynamic power during the pass, in watts.
    """

    cycles: int
    clock_hz: float
    power_w: float

    @property
    def latency_s(self) -> float:
        """Pass duration in seconds (``l x T``)."""
        return self.cycles / self.clock_hz

    @property
    def latency_ns(self) -> float:
        """Pass duration in nanoseconds (the paper's ``t(ns)`` column)."""
        return self.latency_s * 1e9

    @property
    def power_mw(self) -> float:
        """Dynamic power in milliwatts (the paper's ``power(mW)`` column)."""
        return self.power_w * 1e3

    @property
    def energy_j(self) -> float:
        """Energy of the pass in joules (power x latency)."""
        return self.power_w * self.latency_s

    @property
    def energy_nj(self) -> float:
        """Energy of the pass in nanojoules (the paper's ``E(nJ)`` column)."""
        return self.energy_j * 1e9


class EnergyCalculator:
    """Computes encode/decode cost triples from a netlist and chain length.

    Parameters
    ----------
    power_estimator:
        The dynamic-power estimator (carries the library and clock).
    """

    def __init__(self, power_estimator: Optional[PowerEstimator] = None):
        self.power_estimator = (power_estimator if power_estimator is not None
                                else PowerEstimator())

    @property
    def clock_hz(self) -> float:
        """Clock frequency used for latency and power."""
        return self.power_estimator.clock_hz

    def encode_cost(self, netlist: Netlist, chain_length: int) -> CodingCost:
        """Cost of one encoding pass (state circulated once)."""
        return self._cost(netlist, chain_length, decode=False)

    def decode_cost(self, netlist: Netlist, chain_length: int) -> CodingCost:
        """Cost of one decoding pass.

        Decoding additionally exercises the comparison/correction path,
        which adds a small amount of power on top of encoding (visible
        as the slightly higher "dec" columns of the paper's tables).
        """
        return self._cost(netlist, chain_length, decode=True)

    def _cost(self, netlist: Netlist, chain_length: int,
              decode: bool) -> CodingCost:
        if chain_length <= 0:
            raise ValueError("chain length must be positive")
        breakdown: PowerBreakdown = self.power_estimator.scan_mode_power(
            netlist)
        power = breakdown.total
        if decode:
            # The corrector and compare logic are active only while
            # decoding; re-price those groups at full activity.
            corrector = breakdown.group("corrector")
            power += corrector * 1.5
        return CodingCost(cycles=chain_length,
                          clock_hz=self.clock_hz,
                          power_w=power)


__all__ = ["CodingCost", "EnergyCalculator"]
