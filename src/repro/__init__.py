"""repro -- reproduction of "Scan Based Methodology for Reliable State
Retention Power Gating Designs" (Yang, Al-Hashimi, Flynn, Khursheed,
DATE 2010).

The package is organised as a set of substrates plus the paper's core
contribution:

``repro.circuit``
    Register-transfer level substrate: flip-flops (plain, scan and state
    retention), gate primitives, a light netlist container, scan-chain
    insertion and the 32x32 FIFO case-study circuit.

``repro.codes``
    Error detection/correction codes used by the state monitoring block:
    the Hamming(n, k) family, CRC-16 (and generic CRCs), parity and
    SECDED, plus interleaving wrappers.

``repro.power``
    Power-gating substrate: power domains, sleep-transistor networks,
    leakage, the RLC rush-current step-response model and the
    retention-latch upset model driven by supply droop.

``repro.faults``
    Fault injection: LFSRs, the row/column scan-stream error injector of
    the paper's Fig. 6, error patterns (single/burst) and campaigns.

``repro.tech``
    A 120 nm standard-cell cost model and area/power/latency/energy
    estimators used to regenerate the paper's cost tables.

``repro.flow``
    Emulation of the reliability-aware synthesis flow (paper Fig. 4).

``repro.core``
    The paper's contribution: state monitoring block, error correction
    block, the monitored power-gating controller (Fig. 3b), scan-chain
    configuration (Fig. 5) and the :class:`~repro.core.ProtectedDesign`
    integration object.

``repro.validation``
    The FPGA-style functional-verification test bench (Fig. 8).

``repro.analysis``
    Parameter sweeps and Monte-Carlo campaigns that regenerate every
    table and figure of the paper's evaluation section.

``repro.fastpath``
    Packed-integer fast simulation engine: chain state and bit streams
    as big-int bitmasks (:class:`~repro.fastpath.packed_chain.
    PackedScanChain`), table-driven CRC and mask-based Hamming/SECDED
    (:mod:`repro.codes.packed`), batch fault injection, and a
    bit-exact packed replacement for the monitor bank's encode/decode
    passes.  Opt in per design with
    ``ProtectedDesign(..., engine="packed")`` (or ``set_engine``); the
    default remains the bit-serial reference.

``repro.engines``
    Pluggable simulation engines behind a name-based registry:
    ``"reference"`` (bit-serial), ``"packed"`` (packed integers) and
    ``"batched"`` -- a bit-plane engine that simulates B independent
    test sequences per pass by storing bit position *i* of all B
    sequences in one integer.  ``ProtectedDesign.sleep_wake_cycle_batch``
    and the campaign drivers' ``batch_size`` option ride on it;
    third-party engines plug in with
    :func:`repro.engines.register_engine` without touching the core.

``repro.campaigns``
    Campaign orchestration toward the paper's 10^8-sequence scale:
    streaming O(1)-memory mergeable statistics, hash-based
    seed-splitting, and a sharded multiprocessing runner with
    checkpoint/resume whose results are bit-identical for any worker
    count.
"""

from repro.core.protected import ProtectedDesign
from repro.core.scan_config import ScanChainConfig
from repro.core.controller import (
    ControllerState,
    PowerGatingController,
    MonitoredPowerGatingController,
)
from repro.codes import (
    CRCCode,
    HammingCode,
    ParityCode,
    SECDEDCode,
    get_code,
)
from repro.circuit.fifo import SyncFIFO
from repro.fastpath import PackedScanChain
from repro.flow.synthesizer import ReliabilityAwareSynthesizer
from repro.flow.config import FlowConfig

__version__ = "1.1.0"

__all__ = [
    "ProtectedDesign",
    "ScanChainConfig",
    "ControllerState",
    "PowerGatingController",
    "MonitoredPowerGatingController",
    "CRCCode",
    "HammingCode",
    "ParityCode",
    "SECDEDCode",
    "get_code",
    "SyncFIFO",
    "PackedScanChain",
    "ReliabilityAwareSynthesizer",
    "FlowConfig",
    "__version__",
]
