"""Verilog generators for the state monitoring blocks (paper Fig. 2).

A Hamming monitoring block contains:

* the parity generator (instantiating the encoder module) fed by the
  ``k`` scan-out bits it observes;
* a parity storage shift register ``l x r`` bits deep (written during
  the encode pass, read back in order during the decode pass);
* the syndrome decoder / corrector on the decode path, whose corrected
  data drives the scan-in feedback.

A CRC monitoring block contains the serial signature register plus the
stored reference signature and the comparator.
"""

from __future__ import annotations

from repro.codes.crc import CRCCode
from repro.codes.hamming import HammingCode
from repro.rtl.codes_rtl import (
    crc_update_verilog,
    hamming_decoder_verilog,
    hamming_encoder_verilog,
    _module_name,
)


def hamming_monitor_verilog(code: HammingCode, chain_length: int,
                            block_index: int = 0) -> str:
    """The complete Hamming state monitoring block.

    Ports: clock, ``mode`` (0 = idle, 1 = encode, 2 = decode), the
    ``k``-bit scan-out slice in, the corrected slice and the error flag
    out.  Parity storage is a circular shift register of ``chain_length``
    words of ``r`` bits.
    """
    if chain_length <= 0:
        raise ValueError("chain length must be positive")
    name = f"state_monitor_hamming_{code.n}_{code.k}_b{block_index}"
    encoder = _module_name("encoder", code)
    decoder = _module_name("decoder", code)
    k, r = code.k, code.r
    depth = chain_length
    lines = [
        f"// state monitoring block {block_index}: Hamming({code.n},{code.k}),",
        f"// {depth}-deep parity storage (one entry per scan-shift cycle)",
        f"module {name} (",
        "    input  wire               clk,",
        "    input  wire               rst_n,",
        "    input  wire [1:0]         mode,      // 0 idle, 1 encode, 2 decode",
        f"    input  wire [{k - 1}:0]         scan_out,  // one bit per observed chain",
        f"    output wire [{k - 1}:0]         scan_in,   // corrected feedback",
        "    output wire               error,",
        "    output reg                error_seen",
        ");",
        f"    localparam DEPTH = {depth};",
        f"    reg  [{r - 1}:0] parity_mem [0:DEPTH-1];",
        "    reg  [$clog2(DEPTH+1)-1:0] cycle;",
        f"    wire [{r - 1}:0] fresh_parity;",
        f"    wire [{r - 1}:0] stored_parity = parity_mem[cycle];",
        f"    wire [{r - 1}:0] syndrome;",
        f"    wire [{k - 1}:0] corrected;",
        "",
        f"    {encoder} u_encoder (.data(scan_out), .parity(fresh_parity));",
        f"    {decoder} u_decoder (.data(scan_out), .parity(stored_parity),",
        "                          .syndrome(syndrome), .error(error),",
        "                          .corrected(corrected));",
        "",
        "    // During decode the corrected slice is fed back into the",
        "    // scan-in ports (error correction block of Fig. 2); during",
        "    // encode the observed slice is looped back unchanged.",
        "    assign scan_in = (mode == 2'd2) ? corrected : scan_out;",
        "",
        "    always @(posedge clk or negedge rst_n) begin",
        "        if (!rst_n) begin",
        "            cycle      <= 0;",
        "            error_seen <= 1'b0;",
        "        end else begin",
        "            case (mode)",
        "                2'd1: begin            // encode pass",
        "                    parity_mem[cycle] <= fresh_parity;",
        "                    cycle <= (cycle == DEPTH-1) ? 0 : cycle + 1;",
        "                end",
        "                2'd2: begin            // decode pass",
        "                    error_seen <= error_seen | error;",
        "                    cycle <= (cycle == DEPTH-1) ? 0 : cycle + 1;",
        "                end",
        "                default: begin",
        "                    cycle <= 0;",
        "                end",
        "            endcase",
        "        end",
        "    end",
        "endmodule",
    ]
    return (hamming_encoder_verilog(code) + "\n"
            + hamming_decoder_verilog(code) + "\n"
            + "\n".join(lines) + "\n")


def crc_monitor_verilog(code: CRCCode, num_inputs: int,
                        block_index: int = 0) -> str:
    """The detection-only CRC state monitoring block.

    Folds ``num_inputs`` scan-out bits per cycle into the signature
    (serially, one sub-cycle per input in this reference
    implementation), stores the encode-pass signature and compares it
    after the decode pass.
    """
    if num_inputs <= 0:
        raise ValueError("the monitor must observe at least one chain")
    name = f"state_monitor_{code.name.replace('-', '_')}_b{block_index}"
    sig_module = _module_name("sig", code)
    width = code.width
    lines = [
        f"// state monitoring block {block_index}: {code.name.upper()} over "
        f"{num_inputs} scan chains (detection only)",
        f"module {name} (",
        "    input  wire               clk,",
        "    input  wire               rst_n,",
        "    input  wire [1:0]         mode,      // 0 idle, 1 encode, 2 decode",
        "    input  wire               bit_enable,",
        "    input  wire               din,",
        "    input  wire               pass_done,",
        "    output reg                mismatch",
        ");",
        f"    wire [{width - 1}:0] signature;",
        f"    reg  [{width - 1}:0] stored_signature;",
        "    wire clear = (mode == 2'd0);",
        "",
        f"    {sig_module} u_signature (.clk(clk), .clear(clear),",
        "                              .enable(bit_enable), .din(din),",
        "                              .signature(signature));",
        "",
        "    always @(posedge clk or negedge rst_n) begin",
        "        if (!rst_n) begin",
        "            stored_signature <= 0;",
        "            mismatch         <= 1'b0;",
        "        end else if (pass_done && mode == 2'd1) begin",
        "            stored_signature <= signature;   // end of encode pass",
        "        end else if (pass_done && mode == 2'd2) begin",
        "            mismatch <= (signature != stored_signature);",
        "        end",
        "    end",
        "endmodule",
    ]
    return crc_update_verilog(code) + "\n" + "\n".join(lines) + "\n"


__all__ = ["hamming_monitor_verilog", "crc_monitor_verilog"]
