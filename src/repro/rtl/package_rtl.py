"""Bundle the RTL of a protected design into a file set.

:func:`emit_rtl_package` walks a
:class:`~repro.core.protected.ProtectedDesign` and produces one Verilog
file per distinct monitoring block type plus the controller, together
with a file list and a short integration note -- the shape of output a
DFT insertion script would hand to the downstream synthesis flow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Union

from repro.codes.base import BlockCode, StreamCode
from repro.codes.crc import CRCCode
from repro.codes.hamming import HammingCode
from repro.core.protected import ProtectedDesign
from repro.rtl.controller_rtl import monitored_controller_verilog
from repro.rtl.monitor_rtl import crc_monitor_verilog, hamming_monitor_verilog


@dataclass
class RTLPackage:
    """A named collection of generated Verilog sources."""

    top_name: str
    files: Dict[str, str] = field(default_factory=dict)

    @property
    def file_names(self):
        """Names of the generated files, in insertion order."""
        return list(self.files)

    @property
    def total_lines(self) -> int:
        """Total number of generated source lines."""
        return sum(text.count("\n") for text in self.files.values())

    def write_to(self, directory: Union[str, Path]) -> Path:
        """Write every file into ``directory`` (created if needed)."""
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        for name, text in self.files.items():
            (target / name).write_text(text, encoding="utf-8")
        return target


def emit_rtl_package(design: ProtectedDesign) -> RTLPackage:
    """Generate the Verilog file set for a protected design.

    One monitor module is emitted per distinct code (all blocks of the
    same code share the module, matching how the hardware is
    instantiated ``W / k`` times), plus the monitored controller and a
    file list / integration note.
    """
    package = RTLPackage(top_name=f"{design.circuit.name}_protected")
    chain_length = design.chain_length

    for code in design.codes:
        # Exact type check: subclasses (SECDED, interleaved wrappers)
        # have different codeword layouts and would get subtly wrong
        # RTL from the plain Hamming emitter.
        if type(code) is HammingCode:
            file_name = f"monitor_hamming_{code.n}_{code.k}.v"
            package.files[file_name] = hamming_monitor_verilog(
                code, chain_length)
        elif isinstance(code, CRCCode):
            file_name = f"monitor_{code.name.replace('-', '_')}.v"
            package.files[file_name] = crc_monitor_verilog(
                code, num_inputs=design.num_chains)
        elif isinstance(code, (BlockCode, StreamCode)):
            # Codes without a dedicated emitter (e.g. interleaved or
            # SECDED wrappers) are documented rather than silently
            # dropped.
            file_name = f"monitor_{type(code).__name__.lower()}.txt"
            package.files[file_name] = (
                f"// no RTL emitter for {type(code).__name__}; "
                "use the Python model as the reference\n")

    counter_width = max(1, math.ceil(math.log2(chain_length + 1)))
    package.files["pg_controller_monitored.v"] = (
        monitored_controller_verilog(counter_width=counter_width))

    filelist = "\n".join(name for name in package.files
                         if name.endswith(".v"))
    package.files["filelist.f"] = filelist + "\n"
    package.files["INTEGRATION.md"] = _integration_note(design)
    return package


def _integration_note(design: ProtectedDesign) -> str:
    config = design.config
    code_names = ", ".join(getattr(c, "name", type(c).__name__)
                           for c in design.codes)
    return "\n".join([
        f"# RTL integration note for {design.circuit.name}",
        "",
        f"* monitoring codes      : {code_names}",
        f"* scan chains (monitor) : {config.num_chains} x "
        f"{config.chain_length} flops",
        f"* monitoring blocks     : {config.num_monitor_blocks}",
        f"* test-mode scan ports  : {config.test_width} "
        f"({config.test_cycles} cycles per pattern)",
        f"* encode/decode latency : {config.encode_cycles} cycles "
        f"({config.encode_latency_ns:.0f} ns at the scan clock)",
        "",
        "Wire each monitoring block's `scan_out` inputs to the scan-out",
        "ports of its chains and feed `scan_in` back to the chains'",
        "scan-in ports through the 3-way selector (loop-back / corrected",
        "feedback / test input).  Drive `monitor_mode`, `scan_enable`,",
        "`retain` and the header switches from `pg_controller_monitored`.",
        "Manufacturing test re-uses the same chains via the Fig. 5(b)",
        "loop-back concatenation and is unaffected by the monitor.",
        "",
    ])


__all__ = ["RTLPackage", "emit_rtl_package"]
