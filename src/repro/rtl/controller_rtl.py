"""Verilog generator for the monitored power-gating controller (Fig. 3b).

The FSM follows the control sequence of the paper's Fig. 3(b): from
ACTIVE, a ``sleep`` request first runs the encode pass, then the sleep
sequence (RETAIN, switch off); on wake-up the switches turn on, the
state is restored and the decode pass runs; a clean or fully corrected
decode returns to ACTIVE, otherwise the controller parks in ERROR and
raises the error code for software recovery.
"""

from __future__ import annotations


def monitored_controller_verilog(counter_width: int = 10,
                                 module_name: str = "pg_controller_monitored"
                                 ) -> str:
    """Emit the monitored power-gating controller FSM.

    Parameters
    ----------
    counter_width:
        Width of the encode/decode cycle counter (must cover the scan
        chain length ``l``).
    """
    if counter_width <= 0:
        raise ValueError("counter width must be positive")
    lines = [
        "// monitored power-gating controller (paper Fig. 3(b))",
        f"module {module_name} #(",
        f"    parameter CHAIN_LENGTH = {1 << (counter_width - 1)}",
        ") (",
        "    input  wire clk,",
        "    input  wire rst_n,",
        "    input  wire sleep,           // request: 1 = go to sleep",
        "    input  wire supply_stable,   // from the voltage monitor / timer",
        "    input  wire monitor_error,   // any monitoring block mismatch",
        "    input  wire uncorrectable,   // mismatch the corrector cannot fix",
        "    input  wire recovery_done,   // software recovery handshake",
        "    output reg  scan_enable,     // se: chains in scan mode",
        "    output reg  [1:0] monitor_mode, // 0 idle, 1 encode, 2 decode",
        "    output reg  retain,          // RETAIN to the retention flops",
        "    output reg  power_switch_on, // header switch enable",
        "    output reg  [1:0] error_code // 0 none, 1 corrected, 2 uncorrectable",
        ");",
        "    localparam ST_ACTIVE      = 3'd0;",
        "    localparam ST_ENCODE      = 3'd1;",
        "    localparam ST_SLEEP_ENTRY = 3'd2;",
        "    localparam ST_SLEEP       = 3'd3;",
        "    localparam ST_WAKE        = 3'd4;",
        "    localparam ST_DECODE      = 3'd5;",
        "    localparam ST_ERROR       = 3'd6;",
        "",
        "    reg [2:0] state;",
        f"    reg [{counter_width - 1}:0] cycle;",
        "    wire pass_done = (cycle == CHAIN_LENGTH - 1);",
        "",
        "    always @(posedge clk or negedge rst_n) begin",
        "        if (!rst_n) begin",
        "            state           <= ST_ACTIVE;",
        "            cycle           <= 0;",
        "            scan_enable     <= 1'b0;",
        "            monitor_mode    <= 2'd0;",
        "            retain          <= 1'b0;",
        "            power_switch_on <= 1'b1;",
        "            error_code      <= 2'd0;",
        "        end else begin",
        "            case (state)",
        "                ST_ACTIVE: begin",
        "                    scan_enable  <= 1'b0;",
        "                    monitor_mode <= 2'd0;",
        "                    if (sleep) begin",
        "                        state        <= ST_ENCODE;",
        "                        scan_enable  <= 1'b1;",
        "                        monitor_mode <= 2'd1;",
        "                        cycle        <= 0;",
        "                    end",
        "                end",
        "                ST_ENCODE: begin",
        "                    cycle <= cycle + 1;",
        "                    if (pass_done) begin",
        "                        state        <= ST_SLEEP_ENTRY;",
        "                        monitor_mode <= 2'd0;",
        "                        scan_enable  <= 1'b0;",
        "                        retain       <= 1'b1;",
        "                    end",
        "                end",
        "                ST_SLEEP_ENTRY: begin",
        "                    power_switch_on <= 1'b0;",
        "                    state           <= ST_SLEEP;",
        "                end",
        "                ST_SLEEP: begin",
        "                    if (!sleep) begin",
        "                        power_switch_on <= 1'b1;",
        "                        state           <= ST_WAKE;",
        "                    end",
        "                end",
        "                ST_WAKE: begin",
        "                    if (supply_stable) begin",
        "                        retain       <= 1'b0;   // restore masters",
        "                        scan_enable  <= 1'b1;",
        "                        monitor_mode <= 2'd2;",
        "                        cycle        <= 0;",
        "                        state        <= ST_DECODE;",
        "                    end",
        "                end",
        "                ST_DECODE: begin",
        "                    cycle <= cycle + 1;",
        "                    if (pass_done) begin",
        "                        scan_enable  <= 1'b0;",
        "                        monitor_mode <= 2'd0;",
        "                        if (!monitor_error) begin",
        "                            error_code <= 2'd0;",
        "                            state      <= ST_ACTIVE;",
        "                        end else if (!uncorrectable) begin",
        "                            error_code <= 2'd1;",
        "                            state      <= ST_ACTIVE;",
        "                        end else begin",
        "                            error_code <= 2'd2;",
        "                            state      <= ST_ERROR;",
        "                        end",
        "                    end",
        "                end",
        "                ST_ERROR: begin",
        "                    if (recovery_done) begin",
        "                        error_code <= 2'd0;",
        "                        state      <= ST_ACTIVE;",
        "                    end",
        "                end",
        "                default: state <= ST_ACTIVE;",
        "            endcase",
        "        end",
        "    end",
        "endmodule",
    ]
    return "\n".join(lines) + "\n"


__all__ = ["monitored_controller_verilog"]
