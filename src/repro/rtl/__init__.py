"""Synthesizable RTL (Verilog) emission.

The paper's flow produces a synthesizable netlist (the FPGA validation
even does scan insertion "in RTL using Perl script").  This package is
the equivalent generator for the reproduction: it prints plain Verilog
for the building blocks of the methodology so that the protected design
can be taken to an actual FPGA or ASIC flow:

* :mod:`repro.rtl.codes_rtl` -- Hamming encoders/decoders and serial
  CRC update logic generated directly from the code objects;
* :mod:`repro.rtl.monitor_rtl` -- the state monitoring block (parity
  storage shift register, compare, error location outputs);
* :mod:`repro.rtl.controller_rtl` -- the monitored power-gating
  controller FSM of Fig. 3(b);
* :mod:`repro.rtl.package_rtl` -- bundles the per-block modules of a
  :class:`~repro.core.protected.ProtectedDesign` into a file set.

The emitted text is deliberately simple, synchronous, synthesizable
Verilog-2001; the unit tests check its structural consistency and
cross-check the generated equations against the Python code models.
"""

from repro.rtl.codes_rtl import (
    crc_update_verilog,
    hamming_decoder_verilog,
    hamming_encoder_verilog,
)
from repro.rtl.monitor_rtl import crc_monitor_verilog, hamming_monitor_verilog
from repro.rtl.controller_rtl import monitored_controller_verilog
from repro.rtl.package_rtl import RTLPackage, emit_rtl_package

__all__ = [
    "hamming_encoder_verilog",
    "hamming_decoder_verilog",
    "crc_update_verilog",
    "hamming_monitor_verilog",
    "crc_monitor_verilog",
    "monitored_controller_verilog",
    "RTLPackage",
    "emit_rtl_package",
]
