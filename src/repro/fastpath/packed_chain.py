"""Packed-integer scan-chain model.

A :class:`~repro.circuit.scan.ScanChain` stores one Python object per
flip-flop and spends O(l) method calls per shift cycle;
:class:`PackedScanChain` stores the whole chain in two integers and
shifts any number of cycles with a constant number of big-int
operations.

Bit conventions (shared with :mod:`repro.codes.packed` and
:mod:`repro.fastpath.engine`):

* **State integers** are indexed by scan position: bit ``i`` of
  ``state`` is the flop at scan position ``i``, where position 0 is the
  scan-in side and position ``l - 1`` is the scan-out side (the same
  order as ``ScanChain.read_state()``).
* **Stream integers** are packed MSB first in time: the first bit on
  the wire is the most significant bit of the integer, matching
  :func:`repro.codes.base.bits_to_int`.
* **Unknown bits** (the reference model's ``None``) are tracked in a
  parallel ``known`` mask; an unknown bit always has value 0 in
  ``state`` so that masked arithmetic matches the reference model's
  "treat X as 0" behaviour at the monitoring blocks.

Under these conventions a full :meth:`PackedScanChain.circulate` is the
identity on the state and its observed scan-out stream (scan-out-side
bit first) *is* the state integer itself -- one rotation of the paper's
32x32 FIFO costs a few integer copies instead of ~a million Python
operations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.circuit.scan import ScanChain


def pack_state(values: Sequence[Optional[int]]) -> Tuple[int, int]:
    """Pack scan-in-side-first values into ``(state, known)`` integers.

    ``values[i]`` (scan position ``i``) lands in bit ``i``.  ``None``
    marks an unknown bit: its ``known`` bit is 0 and its ``state`` bit
    is forced to 0.
    """
    state = 0
    known = 0
    for i, value in enumerate(values):
        if value is None:
            continue
        v = int(value)
        if v not in (0, 1):
            raise ValueError(f"bit values must be 0, 1 or None; got {value!r}")
        known |= 1 << i
        if v:
            state |= 1 << i
    return state, known


def unpack_state(state: int, known: int,
                 length: int) -> List[Optional[int]]:
    """Inverse of :func:`pack_state`: scan-in-side-first value list."""
    return [((state >> i) & 1) if (known >> i) & 1 else None
            for i in range(length)]


class PackedScanChain:
    """A scan chain whose state lives in two integers.

    Mirrors the cycle-level semantics of
    :class:`~repro.circuit.scan.ScanChain` exactly (the test suite
    checks bit-exact equivalence over randomized states and shift
    schedules) while making ``shift_many``/``circulate`` cost O(1)
    big-int operations per call instead of O(l) method calls per cycle.

    Parameters
    ----------
    length:
        Number of flops in the chain (the paper's ``l``).
    state:
        Initial packed state (bit ``i`` = scan position ``i``).
    known:
        Mask of known bits; defaults to all-known.  Bits of ``state``
        outside ``known`` must be zero.
    """

    __slots__ = ("name", "length", "_mask", "state", "known")

    def __init__(self, length: int, state: int = 0,
                 known: Optional[int] = None, name: str = ""):
        if length <= 0:
            raise ValueError("a scan chain needs at least one flip-flop")
        self.length = length
        self.name = name
        self._mask = (1 << length) - 1
        if known is None:
            known = self._mask
        if not (0 <= known <= self._mask):
            raise ValueError(f"known mask does not fit in {length} bits")
        if not (0 <= state <= self._mask):
            raise ValueError(f"state does not fit in {length} bits")
        if state & ~known:
            raise ValueError("unknown bits must be 0 in the packed state")
        self.state = state
        self.known = known

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_values(cls, values: Sequence[Optional[int]],
                    name: str = "") -> "PackedScanChain":
        """Build from a scan-in-side-first value list (may contain None)."""
        state, known = pack_state(values)
        return cls(len(values), state=state, known=known, name=name)

    @classmethod
    def from_scan_chain(cls, chain: ScanChain) -> "PackedScanChain":
        """Snapshot a reference :class:`ScanChain` into packed form."""
        return cls.from_values(chain.read_state(), name=chain.name)

    def read_state(self) -> List[Optional[int]]:
        """Register values in scan order (scan-in side first)."""
        return unpack_state(self.state, self.known, self.length)

    def load_state(self, values: Sequence[Optional[int]]) -> None:
        """Directly load register values in scan order."""
        if len(values) != self.length:
            raise ValueError(
                f"expected {self.length} values, got {len(values)}")
        self.state, self.known = pack_state(values)

    def write_to(self, chain: ScanChain) -> None:
        """Copy this packed state back into a reference chain."""
        chain.load_state(self.read_state())

    def __len__(self) -> int:
        return self.length

    # ------------------------------------------------------------------
    # Shifting
    # ------------------------------------------------------------------
    @property
    def scan_out(self) -> Optional[int]:
        """Value currently visible at the scan-out port (position l-1)."""
        top = 1 << (self.length - 1)
        if not self.known & top:
            return None
        return 1 if self.state & top else 0

    def shift(self, scan_in: Optional[int]) -> Optional[int]:
        """One scan-shift clock cycle; returns the scanned-out bit."""
        out = self.scan_out
        self.state = (self.state << 1) & self._mask
        self.known = (self.known << 1) & self._mask
        if scan_in is not None:
            v = int(scan_in)
            if v not in (0, 1):
                raise ValueError(
                    f"bit values must be 0, 1 or None; got {scan_in!r}")
            self.known |= 1
            self.state |= v
        return out

    def shift_many(self, stream: int, count: int,
                   known_stream: Optional[int] = None
                   ) -> Tuple[int, int]:
        """Shift ``count`` bits in; returns the scanned-out stream.

        ``stream`` is the scan-in bit stream packed MSB first in time
        (the first bit shifted in is bit ``count - 1``); the returned
        ``(out, out_known)`` pair uses the same packing for the stream
        that left the scan-out port.  ``known_stream`` marks which input
        bits are known (default: all).
        """
        if count < 0:
            raise ValueError("shift count must be non-negative")
        full_in = (1 << count) - 1
        if known_stream is None:
            known_stream = full_in
        if not (0 <= stream <= full_in and 0 <= known_stream <= full_in):
            raise ValueError(f"stream does not fit in {count} bits")
        stream &= known_stream
        l = self.length
        if count <= l:
            out = self.state >> (l - count)
            out_known = self.known >> (l - count)
            self.state = ((self.state << count) | stream) & self._mask
            self.known = ((self.known << count) | known_stream) & self._mask
        else:
            out = (self.state << (count - l)) | (stream >> l)
            out_known = (self.known << (count - l)) | (known_stream >> l)
            self.state = stream & self._mask
            self.known = known_stream & self._mask
        return out, out_known

    def circulate(self) -> Tuple[int, int]:
        """One full rotation with scan-out looped back to scan-in.

        The state is unchanged (every flop ends where it started) and
        the observed scan-out stream -- scan-out-side register first,
        exactly like ``ScanChain.circulate()`` -- packed MSB first in
        time is the state integer itself.  Returns
        ``(stream, known_stream)``.
        """
        return self.state, self.known

    def circulate_bits(self) -> List[Optional[int]]:
        """:meth:`circulate` as a bit list (scan-out-side first).

        Provided for direct comparison against
        ``ScanChain.circulate()``; the packed form is the fast path.
        """
        return [((self.state >> i) & 1) if (self.known >> i) & 1 else None
                for i in range(self.length - 1, -1, -1)]

    # ------------------------------------------------------------------
    def apply_flips(self, flip_mask: int) -> None:
        """XOR a position mask into the state (fault injection).

        Unknown bits stay unknown (the reference model's ``flip()`` is
        a no-op on ``None``), so the mask is gated by ``known``.
        """
        self.state ^= flip_mask & self.known & self._mask

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"PackedScanChain(name={self.name!r}, "
                f"length={self.length}, state=0x{self.state:x})")


__all__ = ["PackedScanChain", "pack_state", "unpack_state"]
