"""Batch fault injection over packed chain state.

The reference :class:`~repro.faults.injector.ScanErrorInjector` flips
bits by circulating the chains (O(W * l^2) flop operations per
injection) or by per-flop ``flip()`` calls.  The packed injector turns
an :class:`~repro.faults.patterns.ErrorPattern` into one XOR mask per
affected chain and applies it with a single XOR -- including the
hardware-style row/column form of the paper's Fig. 6, where a row mask
selects chains and a column mask selects bit positions and every
selected chain receives the same column mask.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.fastpath.packed_chain import PackedScanChain
from repro.faults.patterns import ErrorPattern


def pattern_masks(pattern: ErrorPattern, num_chains: int,
                  chain_length: int) -> Dict[int, int]:
    """Per-chain XOR masks (bit ``p`` = scan position ``p``) of a pattern."""
    masks: Dict[int, int] = {}
    for chain, position in pattern.locations:
        if chain >= num_chains or position >= chain_length:
            raise ValueError(
                f"error location ({chain}, {position}) outside the "
                f"{num_chains}x{chain_length} scan array")
        masks[chain] = masks.get(chain, 0) | (1 << position)
    return masks


def row_column_masks(pattern: ErrorPattern, num_chains: int,
                     chain_length: int) -> Tuple[int, int]:
    """The pattern's row/column injector registers as packed masks.

    Bit ``c`` of the row mask selects chain ``c``; bit ``p`` of the
    column mask selects scan position ``p`` -- the packed form of
    :class:`repro.faults.injector.InjectionPlan`'s ``row_vector`` and
    ``column_vector``.
    """
    row = 0
    column = 0
    for chain, position in pattern.locations:
        if chain >= num_chains or position >= chain_length:
            raise ValueError(
                f"error location ({chain}, {position}) outside the "
                f"{num_chains}x{chain_length} scan array")
        row |= 1 << chain
        column |= 1 << position
    return row, column


class PackedErrorInjector:
    """Applies error patterns to packed chains with one XOR per chain.

    Parameters
    ----------
    chains:
        The packed chains of the design under attack; all must have the
        same length.
    """

    def __init__(self, chains: Sequence[PackedScanChain]):
        if not chains:
            raise ValueError("at least one scan chain is required")
        lengths = {chain.length for chain in chains}
        if len(lengths) != 1:
            raise ValueError(
                f"all chains must have equal length for injection, got "
                f"lengths {sorted(lengths)}")
        self.chains: List[PackedScanChain] = list(chains)
        self.chain_length = lengths.pop()
        self.num_chains = len(self.chains)

    def inject(self, pattern: ErrorPattern) -> int:
        """Flip the pattern's coordinates; returns bits actually flipped.

        Unknown bits are skipped, matching the reference injector's
        behaviour on ``None``-valued flops.
        """
        flipped = 0
        for chain_index, mask in pattern_masks(
                pattern, self.num_chains, self.chain_length).items():
            chain = self.chains[chain_index]
            effective = mask & chain.known
            chain.apply_flips(mask)
            flipped += effective.bit_count()
        return flipped

    def inject_row_column(self, row_mask: int, column_mask: int) -> int:
        """Hardware-style injection: flip ``column_mask`` in every
        selected chain (the full row x column conjunction of Fig. 6).

        Returns the number of bits actually flipped.
        """
        if not (0 <= row_mask < (1 << self.num_chains)):
            raise ValueError("row mask does not fit the chain count")
        if not (0 <= column_mask < (1 << self.chain_length)):
            raise ValueError("column mask does not fit the chain length")
        flipped = 0
        remaining = row_mask
        while remaining:
            low = remaining & -remaining
            chain_index = low.bit_length() - 1
            remaining ^= low
            chain = self.chains[chain_index]
            flipped += (column_mask & chain.known).bit_count()
            chain.apply_flips(column_mask)
        return flipped


__all__ = [
    "PackedErrorInjector",
    "pattern_masks",
    "row_column_masks",
]
