"""Packed encode/decode monitoring passes.

:class:`PackedMonitorEngine` re-implements
:meth:`repro.core.monitor.MonitorBank.encode_pass` and
:meth:`~repro.core.monitor.MonitorBank.decode_pass` over packed chain
state.  It is built from an existing
:class:`~repro.core.monitor.MonitorBank` (so the block structure,
codes and chain assignments are shared with the reference) and is
bit-exact against it: same stored check bits, same
:class:`~repro.core.monitor.MonitorReport` contents (including
correction events and their order), same final chain state.  The
equivalence is enforced by the property tests in
``tests/fastpath/test_engine_equivalence.py``.

Timing model (shared with the reference): decode cycle ``t`` observes
the bit leaving each chain's scan-out port, which is the bit at scan
position ``l - 1 - t`` -- the scan-out side leaves first.  See
:mod:`repro.circuit.scan` for the ordering conventions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.codes.base import DecodeStatus
from repro.codes.packed import packed_block_code, packed_stream_code
from repro.core.corrector import CorrectionEvent
from repro.core.monitor import (
    CRCMonitorBlock,
    HammingMonitorBlock,
    MonitorBank,
    MonitorReport,
    StateMonitorBlock,
)


class _PackedBlockMonitor:
    """Packed state of one correcting (block-code) monitoring block."""

    def __init__(self, block: HammingMonitorBlock):
        self.block = block
        self.chain_indices = block.chain_indices
        self.width = block.width
        self.packed = packed_block_code(block.code)
        self.k = self.packed.k
        self.stored_parity: List[int] = []

    def gather(self, states: Sequence[int], position: int) -> int:
        """The block's k-bit data slice at one scan position.

        Chains beyond ``width`` are the tied-off padding inputs; their
        bits are implicitly 0 in the packed word.
        """
        data = 0
        top = self.k - 1
        for local, chain_index in enumerate(self.chain_indices):
            data |= ((states[chain_index] >> position) & 1) << (top - local)
        return data


class _PackedStreamMonitor:
    """Packed state of one detection-only (stream-code) block."""

    def __init__(self, block: CRCMonitorBlock):
        self.block = block
        self.chain_indices = block.chain_indices
        self.width = block.width
        self.packed = packed_stream_code(block.code)
        self.stored_signature: Optional[int] = None

    def stream(self, states: Sequence[int], length: int) -> Tuple[int, int]:
        """The block's full observation stream over one pass.

        Cycle ``t`` contributes the observed chains' bits at scan
        position ``l - 1 - t``, in chain order -- ``width`` bits per
        cycle, packed MSB first in time.  Returns ``(stream, nbits)``.
        """
        indices = self.chain_indices
        if len(indices) == 1:
            # A single observed chain: the stream is the circulating
            # state itself (scan-out-side bit first).
            return states[indices[0]], length
        stream = 0
        width = self.width
        top = width - 1
        for position in range(length - 1, -1, -1):
            piece = 0
            for local, chain_index in enumerate(indices):
                piece |= ((states[chain_index] >> position) & 1) \
                    << (top - local)
            stream = (stream << width) | piece
        return stream, length * width


def classify_monitors(bank: MonitorBank, block_factory, stream_factory):
    """Build an engine's monitor wrappers from a bank, in bank order.

    Shared by the packed and bit-plane engines so the classification
    policy (correcting vs observing, report order, and the
    overlapping-correctors criterion the replay path keys on) lives in
    one place.  Returns ``(order, correcting, observing, overlapping)``
    where ``order`` is ``[("block"|"stream", monitor), ...]``.
    """
    order: List[Tuple[str, object]] = []
    correcting: List[object] = []
    observing: List[object] = []
    for block in bank.blocks:
        if block.can_correct:
            monitor = block_factory(block)
            correcting.append(monitor)
            order.append(("block", monitor))
        else:
            monitor = stream_factory(block)
            observing.append(monitor)
            order.append(("stream", monitor))
    # When several correcting blocks cover the same chain the reference
    # lets the *last* block's slice win on the feedback path; sparse
    # fast paths assume disjoint coverage and fall back to the shared
    # replay when they overlap.
    covered: set = set()
    overlapping = False
    for monitor in correcting:
        if covered.intersection(monitor.chain_indices):
            overlapping = True
        covered.update(monitor.chain_indices)
    return order, correcting, observing, overlapping


def replay_overlapping_feedback(monitors, states: Sequence[int],
                                length: int, stored_word) -> List[int]:
    """Reference-faithful feedback replay for overlapping correctors.

    The reference lets every correcting block assign its (possibly
    uncorrected) slice onto the feedback path in bank order, so on
    shared chains the last block wins even where an earlier block
    corrected.  This is the single implementation of that rule, shared
    by the packed and bit-plane engines (which otherwise assume
    disjoint coverage): ``monitors`` expose ``chain_indices`` /
    ``width`` / ``k`` and a packed ``decode_slice``;
    ``stored_word(monitor, cycle)`` returns the stored parity word of
    one cycle.  Operates on (and returns) packed per-chain states.
    """
    corrected = list(states)
    for cycle in range(length):
        position = length - 1 - cycle
        bit_mask = 1 << position
        for monitor in monitors:
            top = monitor.k - 1
            data = 0
            for local, chain_index in enumerate(monitor.chain_indices):
                data |= ((states[chain_index] >> position) & 1) \
                    << (top - local)
            _status, corrected_data, positions = \
                monitor.packed.decode_slice(data, stored_word(monitor,
                                                              cycle))
            slice_bits = data
            for p in positions:
                if p < monitor.width:
                    slice_bits = corrected_data
                    break
            for local, chain_index in enumerate(monitor.chain_indices):
                if (slice_bits >> (top - local)) & 1:
                    corrected[chain_index] |= bit_mask
                else:
                    corrected[chain_index] &= ~bit_mask
    return corrected


class PackedMonitorEngine:
    """Packed-integer equivalent of a monitor bank's encode/decode.

    Parameters
    ----------
    bank:
        The monitor bank whose structure (blocks, codes, chain
        assignments, report order) this engine mirrors.  Check bits are
        stored inside the engine; the bank's own block objects are left
        untouched.
    num_chains, chain_length:
        Geometry of the packed chain set the passes will run over.
    """

    def __init__(self, bank: MonitorBank, num_chains: int, chain_length: int):
        self.num_chains = num_chains
        self.chain_length = chain_length
        (self._order, self._correcting, self._observing,
         self._overlapping_correctors) = classify_monitors(
            bank, _PackedBlockMonitor, _PackedStreamMonitor)
        self._encoded = False

    # ------------------------------------------------------------------
    def _check_geometry(self, states: Sequence[int],
                        knowns: Sequence[int]) -> None:
        if len(states) != self.num_chains or len(knowns) != self.num_chains:
            raise ValueError(
                f"expected {self.num_chains} packed chains, got "
                f"{len(states)}")
        full = (1 << self.chain_length) - 1
        for state, known in zip(states, knowns):
            if state & ~known or state > full or known > full:
                raise ValueError(
                    "packed state has bits outside the known mask or the "
                    "chain length")

    def encode_pass(self, states: Sequence[int],
                    knowns: Sequence[int]) -> int:
        """Run one full encoding pass; returns the cycle count.

        ``states[c]`` / ``knowns[c]`` are chain ``c``'s packed state
        (unknown bits 0, matching the monitors' treat-X-as-0 rule).
        The pass leaves the chain state unchanged -- a full circulation
        is the identity -- so nothing is written back.
        """
        self._check_geometry(states, knowns)
        length = self.chain_length
        for monitor in self._correcting:
            parity = monitor.packed.parity
            gather = monitor.gather
            monitor.stored_parity = [
                parity(gather(states, position))
                for position in range(length - 1, -1, -1)]
        for monitor in self._observing:
            stream, nbits = monitor.stream(states, length)
            monitor.stored_signature = monitor.packed.signature_int(
                stream, nbits)
        self._encoded = True
        return length

    def decode_pass(self, states: Sequence[int], knowns: Sequence[int]
                    ) -> Tuple[List[MonitorReport], List[int]]:
        """Run one full decoding pass with on-the-fly correction.

        Returns ``(reports, corrected_states)``: the per-block reports
        in the bank's block order and the packed chain states after the
        pass (every bit known -- the reference pass reloads unknown
        bits as 0).
        """
        if not self._encoded:
            raise RuntimeError("no stored check bits: encode first")
        self._check_geometry(states, knowns)
        length = self.chain_length
        corrected = list(states)

        block_results = []
        for monitor in self._correcting:
            if len(monitor.stored_parity) != length:
                raise RuntimeError(
                    "decode pass is longer than the stored encode pass")
            detected = False
            uncorrectable = False
            corrections: List[CorrectionEvent] = []
            bad_slices: List[int] = []
            decode_slice = monitor.packed.decode_slice
            gather = monitor.gather
            stored = monitor.stored_parity
            width = monitor.width
            k = monitor.k
            block_index = monitor.block.block_index
            indices = monitor.chain_indices
            for cycle in range(length):
                position = length - 1 - cycle
                data = gather(states, position)
                status, corrected_data, positions = decode_slice(
                    data, stored[cycle])
                if status is DecodeStatus.NO_ERROR:
                    continue
                detected = True
                bad_slices.append(cycle)
                if status is DecodeStatus.DETECTED:
                    uncorrectable = True
                    continue
                for p in positions:
                    if p < width:
                        chain_index = indices[p]
                        bit = (corrected_data >> (k - 1 - p)) & 1
                        if bit:
                            corrected[chain_index] |= 1 << position
                        else:
                            corrected[chain_index] &= ~(1 << position)
                        corrections.append(CorrectionEvent(
                            block_index=block_index,
                            chain_index=chain_index,
                            cycle=cycle))
                    elif p >= k:
                        # Stored parity bit flipped: state is fine.
                        pass
                    else:
                        # Correction lands on a tied-off padding input.
                        uncorrectable = True
            block_results.append((monitor, MonitorReport(
                block_index=block_index,
                error_detected=detected,
                corrections=tuple(corrections),
                uncorrectable=uncorrectable,
                slices_with_errors=tuple(bad_slices))))

        if self._overlapping_correctors:
            corrected = self._replay_overlapping(states, length)

        stream_results = []
        for monitor in self._observing:
            if monitor.stored_signature is None:
                raise RuntimeError("no stored signature: encode first")
            stream, nbits = monitor.stream(corrected, length)
            mismatch = (monitor.packed.signature_int(stream, nbits)
                        != monitor.stored_signature)
            stream_results.append((monitor, MonitorReport(
                block_index=monitor.block.block_index,
                error_detected=mismatch,
                corrections=(),
                uncorrectable=mismatch)))

        by_monitor = dict((id(m), r) for m, r in block_results)
        by_monitor.update((id(m), r) for m, r in stream_results)
        reports = [by_monitor[id(monitor)] for _, monitor in self._order]
        return reports, corrected

    # ------------------------------------------------------------------
    def _replay_overlapping(self, states: Sequence[int],
                            length: int) -> List[int]:
        """Feedback replay when correcting blocks share chains; only
        runs for overlapping configurations (see
        :func:`replay_overlapping_feedback`)."""
        return replay_overlapping_feedback(
            self._correcting, states, length,
            lambda monitor, cycle: monitor.stored_parity[cycle])


__all__ = [
    "PackedMonitorEngine",
    "classify_monitors",
    "replay_overlapping_feedback",
]
