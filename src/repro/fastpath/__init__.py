"""Packed-integer fast simulation engine.

The reference models in :mod:`repro.circuit` and :mod:`repro.core`
simulate every scan shift as a Python method call on a per-flop object
and carry every bit stream around as a tuple of ints.  That is ideal
for auditing the methodology cycle by cycle, but one ``circulate()`` of
the paper's 32x32 FIFO already costs on the order of a million Python
operations, and the Monte-Carlo campaigns multiply that by thousands of
sequences.

This package provides drop-in *packed* equivalents where chain state
and bit streams are plain Python integers (arbitrary-precision
bitmasks) and each operation is a handful of mask-and-shift operations
per chain or per slice instead of per bit:

``repro.fastpath.packed_chain``
    :class:`PackedScanChain` -- scan-chain state as an integer;
    ``shift_many``/``circulate`` are O(1) big-int operations instead of
    O(l) method calls per cycle.

``repro.fastpath.inject``
    :class:`PackedErrorInjector` -- batch fault injection that applies
    row/column error masks with a single XOR per chain.

``repro.fastpath.engine``
    :class:`PackedMonitorEngine` -- complete encode/decode monitoring
    passes over packed chain state, bit-exact against
    :class:`repro.core.monitor.MonitorBank` (same reports, same
    correction events, same final state).

The packed implementations of the codes themselves (table-driven CRC,
mask-based Hamming/SECDED) live next to their reference counterparts in
:mod:`repro.codes.packed`.

Every packed component is property-tested for bit-exact equivalence
against the bit-serial reference; selecting
``ProtectedDesign(..., engine="packed")`` changes wall-clock time, not
results.
"""

from repro.fastpath.engine import PackedMonitorEngine
from repro.fastpath.inject import PackedErrorInjector
from repro.fastpath.packed_chain import (
    PackedScanChain,
    pack_state,
    unpack_state,
)

__all__ = [
    "PackedScanChain",
    "PackedMonitorEngine",
    "PackedErrorInjector",
    "pack_state",
    "unpack_state",
]
