"""Base class for sequential circuits that can be protected.

A :class:`SequentialCircuit` exposes exactly what the methodology needs
from a design:

* its registers, as :class:`~repro.circuit.flipflop.RetentionFlipFlop`
  instances (so that sleep/wake retention and corruption can be
  modelled);
* a structural :class:`~repro.circuit.netlist.Netlist` for cost
  accounting;
* state load/dump used by scan shifting and by the validation bench.

Concrete circuits (the 32x32 FIFO case study, counters, register files,
...) subclass this and add their functional behaviour on top.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

from repro.circuit.flipflop import RetentionFlipFlop
from repro.circuit.netlist import Netlist
from repro.circuit.state import StateSnapshot


class SequentialCircuit(ABC):
    """A clocked design whose registers can be retained and scanned."""

    #: Module name of the circuit.
    name: str

    @property
    @abstractmethod
    def registers(self) -> List[RetentionFlipFlop]:
        """All state-bearing registers, in a stable, deterministic order."""

    @property
    @abstractmethod
    def netlist(self) -> Netlist:
        """Structural netlist used for area/power accounting."""

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    @property
    def num_registers(self) -> int:
        """Number of state-bearing registers."""
        return len(self.registers)

    def snapshot(self) -> StateSnapshot:
        """Capture the current register state."""
        regs = self.registers
        return StateSnapshot(
            values=tuple(ff.q for ff in regs),
            names=tuple(ff.name for ff in regs))

    def load_state(self, values: Sequence[Optional[int]]) -> None:
        """Overwrite every register with the supplied values."""
        regs = self.registers
        if len(values) != len(regs):
            raise ValueError(
                f"expected {len(regs)} register values, got {len(values)}")
        for ff, value in zip(regs, values):
            ff.force(value)

    def load_snapshot(self, snapshot: StateSnapshot) -> None:
        """Overwrite every register from a snapshot."""
        self.load_state(snapshot.values)

    def reset_registers(self, value: int = 0) -> None:
        """Reset every register to ``value``."""
        for ff in self.registers:
            ff.reset(value)

    # ------------------------------------------------------------------
    # Retention sequencing (used by the power-gating controller)
    # ------------------------------------------------------------------
    def retain_all(self) -> None:
        """Assert RETAIN on every register (master -> retention latch)."""
        for ff in self.registers:
            ff.retain()

    def restore_all(self) -> None:
        """De-assert RETAIN on every register (retention latch -> master)."""
        for ff in self.registers:
            ff.restore()

    def power_off_all(self) -> None:
        """Collapse the gated rail under every register's master stage."""
        for ff in self.registers:
            ff.power_off()

    def power_on_all(self) -> None:
        """Re-energise the gated rail under every register's master stage."""
        for ff in self.registers:
            ff.power_on()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, registers={self.num_registers})"


__all__ = ["SequentialCircuit"]
