"""Light-weight structural netlist container.

The reproduction does not need full named-net connectivity (behaviour is
modelled at cycle level by the circuit classes); what it does need is a
faithful *inventory* of cell instances so that the synthesis-flow
emulation can price a design with the 120 nm technology model and
reproduce the paper's area and power tables.  The netlist therefore
stores cell instances grouped by library cell name, plus the top-level
ports, and provides counting/merging utilities.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple


class PortDirection(enum.Enum):
    """Direction of a top-level port."""

    INPUT = "input"
    OUTPUT = "output"
    INOUT = "inout"


@dataclass(frozen=True)
class Port:
    """A top-level port of a netlist."""

    name: str
    direction: PortDirection
    width: int = 1

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"port {self.name!r} must have positive width")


@dataclass(frozen=True)
class CellInstance:
    """One instance of a library cell inside a netlist."""

    name: str
    cell: str
    #: Free-form grouping label, e.g. "fifo", "monitor", "corrector",
    #: "controller"; used to attribute area overhead to the protection
    #: circuitry separately from the protected design.
    group: str = "core"


class Netlist:
    """A bag of cell instances plus top-level ports.

    Parameters
    ----------
    name:
        Module name of the netlist (e.g. ``"fifo32x32"``).
    """

    def __init__(self, name: str):
        self.name = name
        self._cells: List[CellInstance] = []
        self._ports: Dict[str, Port] = {}

    # ------------------------------------------------------------------
    # Ports
    # ------------------------------------------------------------------
    def add_port(self, name: str, direction: PortDirection,
                 width: int = 1) -> Port:
        """Declare a top-level port; re-declaring a name is an error."""
        if name in self._ports:
            raise ValueError(f"port {name!r} already declared")
        port = Port(name, direction, width)
        self._ports[name] = port
        return port

    @property
    def ports(self) -> Tuple[Port, ...]:
        """All declared ports, in declaration order."""
        return tuple(self._ports.values())

    def port(self, name: str) -> Port:
        """Look up a port by name."""
        return self._ports[name]

    # ------------------------------------------------------------------
    # Cells
    # ------------------------------------------------------------------
    def add_cell(self, cell: str, name: Optional[str] = None,
                 group: str = "core") -> CellInstance:
        """Add one instance of library cell ``cell``."""
        inst_name = name if name is not None else f"{cell}_{len(self._cells)}"
        inst = CellInstance(name=inst_name, cell=cell, group=group)
        self._cells.append(inst)
        return inst

    def add_cells(self, cell: str, count: int, group: str = "core") -> None:
        """Add ``count`` anonymous instances of ``cell``."""
        if count < 0:
            raise ValueError("cell count must be non-negative")
        for _ in range(count):
            self.add_cell(cell, group=group)

    def __iter__(self) -> Iterator[CellInstance]:
        return iter(self._cells)

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def cells(self) -> Tuple[CellInstance, ...]:
        """All cell instances."""
        return tuple(self._cells)

    def cell_counts(self, group: Optional[str] = None) -> Dict[str, int]:
        """Histogram of cell types, optionally restricted to one group."""
        counter: Counter = Counter()
        for inst in self._cells:
            if group is None or inst.group == group:
                counter[inst.cell] += 1
        return dict(counter)

    def groups(self) -> List[str]:
        """All distinct group labels present in the netlist."""
        return sorted({inst.group for inst in self._cells})

    def count(self, cell: str, group: Optional[str] = None) -> int:
        """Number of instances of ``cell`` (optionally in ``group``)."""
        return sum(
            1 for inst in self._cells
            if inst.cell == cell and (group is None or inst.group == group))

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def merge(self, other: "Netlist", group: Optional[str] = None) -> None:
        """Absorb another netlist's cells (ports are not merged).

        When ``group`` is given, the absorbed cells are re-labelled with
        that group, which is how the synthesis flow attributes monitor /
        corrector / controller logic added around a core design.
        """
        for inst in other:
            self._cells.append(CellInstance(
                name=f"{other.name}/{inst.name}",
                cell=inst.cell,
                group=group if group is not None else inst.group))

    def copy(self) -> "Netlist":
        """Deep-enough copy (cell instances are immutable)."""
        dup = Netlist(self.name)
        dup._cells = list(self._cells)
        dup._ports = dict(self._ports)
        return dup

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Netlist({self.name!r}, cells={len(self._cells)}, "
                f"ports={len(self._ports)})")


def netlist_from_counts(name: str, counts: Dict[str, int],
                        group: str = "core") -> Netlist:
    """Build a netlist directly from a ``{cell: count}`` mapping."""
    netlist = Netlist(name)
    for cell, count in counts.items():
        netlist.add_cells(cell, count, group=group)
    return netlist


__all__ = [
    "PortDirection",
    "Port",
    "CellInstance",
    "Netlist",
    "netlist_from_counts",
]
