"""Scan-chain modelling and insertion.

Scan chains connect a design's flip-flops into long shift registers for
manufacturing test (paper Section II).  The methodology re-uses those
chains as the access channel over which the state monitoring block reads
(and, for correcting codes, rewrites) the design state.

This module provides:

* :class:`ScanChain` -- an ordered group of scan/retention flip-flops
  with cycle-level shift behaviour;
* :func:`insert_scan_chains` -- partition a circuit's registers into
  ``W`` chains (the scan-insertion step of the synthesis flow, Fig. 4);
* :func:`balance_chains` -- the chain-balancing policy used when the
  register count does not divide evenly.

Bit-order conventions
---------------------

Two orders coexist and must never be mixed (the round-trip tests in
``tests/circuit/test_scan_order.py`` pin them down):

* **scan order** (*scan-in side first*): position 0 is the flop at the
  scan-in port, position ``l - 1`` the flop at the scan-out port.
  :meth:`ScanChain.read_state` and :meth:`ScanChain.load_state` use
  scan order.
* **emission order** (*scan-out side first*): streams observed on the
  scan-out wire are time-ordered, and the scan-out-side flop leaves
  first.  :meth:`ScanChain.shift_many` and :meth:`ScanChain.circulate`
  return emission order -- ``circulate()`` is exactly
  ``read_state()`` reversed.

Consequently the bit observed at shift cycle ``c`` of a pass
originates from scan position ``l - 1 - c``; every consumer translates
with that formula (`repro.core.corrector.ErrorCorrectionBlock.
corrected_flops` for correction events, ``repro.faults.injector`` for
injection coordinates, and the packed engine in ``repro.fastpath``).
Re-shifting an emission-order stream into an equal-length chain
restores the original state: the first-emitted bit travels all the way
back to the scan-out side.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.circuit.base import SequentialCircuit
from repro.circuit.flipflop import ScanFlipFlop


class ScanChain:
    """An ordered chain of scan flip-flops.

    Scan data enters at element 0 (the scan-in side) and leaves at the
    last element (the scan-out side).  One call to :meth:`shift` models
    one clock cycle in scan mode: every flop captures the output of its
    predecessor, the first flop captures the supplied scan-in bit, and
    the value previously held by the last flop appears at scan-out.
    """

    def __init__(self, flops: Sequence[ScanFlipFlop], name: str = ""):
        if not flops:
            raise ValueError("a scan chain needs at least one flip-flop")
        self.name = name
        self._flops: List[ScanFlipFlop] = list(flops)

    # ------------------------------------------------------------------
    @property
    def flops(self) -> List[ScanFlipFlop]:
        """The chain's flip-flops from scan-in side to scan-out side."""
        return list(self._flops)

    def __len__(self) -> int:
        return len(self._flops)

    @property
    def length(self) -> int:
        """Number of flip-flops in the chain (the paper's ``l``)."""
        return len(self._flops)

    @property
    def scan_out(self) -> Optional[int]:
        """Value currently visible at the scan-out port."""
        return self._flops[-1].q

    # ------------------------------------------------------------------
    def shift(self, scan_in: Optional[int]) -> Optional[int]:
        """One scan-shift clock cycle; returns the scanned-out bit."""
        out = self._flops[-1].q
        # Capture old values first so that the shift is simultaneous.
        previous = [ff.q for ff in self._flops]
        self._flops[0].force(scan_in)
        for i in range(1, len(self._flops)):
            self._flops[i].force(previous[i - 1])
        return out

    def shift_many(self, scan_in_bits: Sequence[Optional[int]]
                   ) -> List[Optional[int]]:
        """Shift a sequence of bits in; returns the scanned-out bits."""
        return [self.shift(bit) for bit in scan_in_bits]

    def read_state(self) -> List[Optional[int]]:
        """Register values in scan order (scan-in side first)."""
        return [ff.q for ff in self._flops]

    def load_state(self, values: Sequence[Optional[int]]) -> None:
        """Directly load register values in scan order."""
        if len(values) != len(self._flops):
            raise ValueError(
                f"expected {len(self._flops)} values, got {len(values)}")
        for ff, value in zip(self._flops, values):
            ff.force(value)

    def circulate(self) -> List[Optional[int]]:
        """Shift the chain through one full rotation.

        The scan-out is looped back to the scan-in, so after
        ``len(self)`` cycles every flop holds its original value again.
        This is exactly what the monitoring block does during encoding
        (paper Section II.A): it observes the whole state without
        destroying it.  Returns the observed scan-out stream, one bit
        per cycle (the scan-out-side register first).
        """
        observed: List[Optional[int]] = []
        for _ in range(len(self._flops)):
            # Loop-back: the bit leaving scan-out re-enters at scan-in.
            out_bit = self._flops[-1].q
            self.shift(out_bit)
            observed.append(out_bit)
        return observed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScanChain(name={self.name!r}, length={len(self)})"


def balance_chains(num_registers: int, num_chains: int) -> List[int]:
    """Chain lengths for splitting ``num_registers`` into ``num_chains``.

    The first ``num_registers % num_chains`` chains get one extra flop,
    mirroring what DFT tools do when the register count does not divide
    evenly.
    """
    if num_chains <= 0:
        raise ValueError("number of chains must be positive")
    if num_registers < num_chains:
        raise ValueError(
            f"cannot build {num_chains} chains from {num_registers} "
            f"registers")
    base = num_registers // num_chains
    extra = num_registers % num_chains
    return [base + 1 if i < extra else base for i in range(num_chains)]


def insert_scan_chains(circuit: SequentialCircuit,
                       num_chains: int) -> List[ScanChain]:
    """Partition a circuit's registers into ``num_chains`` scan chains.

    Registers are assigned to chains in contiguous blocks of balanced
    length; the register order is the circuit's canonical register
    order.  This mirrors the re-ordering step of the paper's Section III
    where 128 flip-flops are regrouped from 4 chains into 16 chains to
    speed up encoding.
    """
    registers = circuit.registers
    lengths = balance_chains(len(registers), num_chains)
    chains: List[ScanChain] = []
    cursor = 0
    for index, length in enumerate(lengths):
        flops = registers[cursor:cursor + length]
        cursor += length
        chains.append(ScanChain(flops, name=f"{circuit.name}_chain{index}"))
    return chains


__all__ = ["ScanChain", "insert_scan_chains", "balance_chains"]
