"""Register-transfer level circuit substrate.

This package provides the structural and behavioural building blocks the
methodology operates on:

* flip-flops -- plain D flip-flops, scan flip-flops and the
  state-retention flip-flop of the paper's Fig. 1 (master powered by the
  gated rail, always-on slave retention latch, ``RETAIN`` control);
* gate primitives and a light netlist container used for cost
  accounting and scan stitching;
* scan-chain insertion (replace system flip-flops with scan flip-flops,
  partition into chains, stitch scan-in/scan-out);
* circuit generators, most importantly the 32x32 FIFO used as the
  paper's case study, plus counters, shift registers and register files
  used in the examples and tests.
"""

from repro.circuit.base import SequentialCircuit
from repro.circuit.flipflop import (
    DFlipFlop,
    ScanFlipFlop,
    RetentionFlipFlop,
    PowerState,
)
from repro.circuit.gates import Gate, GateType, evaluate_gate
from repro.circuit.netlist import (
    Netlist,
    CellInstance,
    Port,
    PortDirection,
    netlist_from_counts,
)
from repro.circuit.scan import ScanChain, insert_scan_chains, balance_chains
from repro.circuit.fifo import SyncFIFO, FIFOError
from repro.circuit.generators import (
    Counter,
    ShiftRegister,
    RegisterFile,
    RandomStateCircuit,
    make_counter,
    make_shift_register,
    make_register_file,
    make_random_state_circuit,
)
from repro.circuit.state import StateSnapshot

__all__ = [
    "SequentialCircuit",
    "DFlipFlop",
    "ScanFlipFlop",
    "RetentionFlipFlop",
    "PowerState",
    "Gate",
    "GateType",
    "evaluate_gate",
    "Netlist",
    "CellInstance",
    "Port",
    "PortDirection",
    "netlist_from_counts",
    "ScanChain",
    "insert_scan_chains",
    "balance_chains",
    "SyncFIFO",
    "FIFOError",
    "Counter",
    "ShiftRegister",
    "RegisterFile",
    "RandomStateCircuit",
    "make_counter",
    "make_shift_register",
    "make_register_file",
    "make_random_state_circuit",
    "StateSnapshot",
]
