"""Generators for small sequential circuits used in examples and tests.

Besides the paper's 32x32 FIFO (see :mod:`repro.circuit.fifo`), the test
suite and the examples use several simpler register-dominated circuits:
binary counters, shift registers, register files and randomly
initialised "state blobs" that stand in for arbitrary power-gated logic.
All of them are :class:`~repro.circuit.base.SequentialCircuit`
subclasses built on retention flip-flops, so the full methodology can be
applied to any of them.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.circuit.base import SequentialCircuit
from repro.circuit.flipflop import RetentionFlipFlop
from repro.circuit.netlist import Netlist, PortDirection


class _RegisterCircuit(SequentialCircuit):
    """Shared plumbing for the generated circuits below."""

    def __init__(self, name: str, registers: List[RetentionFlipFlop],
                 netlist: Netlist):
        self.name = name
        self._registers = registers
        self._netlist = netlist

    @property
    def registers(self) -> List[RetentionFlipFlop]:
        """All state-bearing registers of the generated circuit."""
        return self._registers

    @property
    def netlist(self) -> Netlist:
        """Structural netlist of the generated circuit."""
        return self._netlist


class Counter(_RegisterCircuit):
    """A binary up-counter with ``width`` bits of state."""

    def __init__(self, width: int, name: str = "counter"):
        if width <= 0:
            raise ValueError("counter width must be positive")
        self.width = width
        registers = [RetentionFlipFlop(name=f"{name}.count[{i}]", init=0)
                     for i in range(width)]
        netlist = Netlist(name)
        netlist.add_port("clk", PortDirection.INPUT)
        netlist.add_port("count", PortDirection.OUTPUT, width)
        netlist.add_cells("rsdff", width, group="core")
        netlist.add_cells("xor2", width, group="core")
        netlist.add_cells("and2", max(width - 1, 0), group="core")
        super().__init__(name, registers, netlist)

    @property
    def value(self) -> int:
        """Current counter value (LSB-first packing of register bits)."""
        return sum((ff.q or 0) << i for i, ff in enumerate(self._registers))

    def tick(self) -> int:
        """Advance the counter by one; returns the new value."""
        new_value = (self.value + 1) % (1 << self.width)
        for i, ff in enumerate(self._registers):
            ff.force((new_value >> i) & 1)
        return new_value


class ShiftRegister(_RegisterCircuit):
    """A serial-in, serial-out shift register of ``length`` bits."""

    def __init__(self, length: int, name: str = "shiftreg"):
        if length <= 0:
            raise ValueError("shift register length must be positive")
        self.length = length
        registers = [RetentionFlipFlop(name=f"{name}.sr[{i}]", init=0)
                     for i in range(length)]
        netlist = Netlist(name)
        netlist.add_port("clk", PortDirection.INPUT)
        netlist.add_port("sin", PortDirection.INPUT)
        netlist.add_port("sout", PortDirection.OUTPUT)
        netlist.add_cells("rsdff", length, group="core")
        super().__init__(name, registers, netlist)

    def shift(self, bit: int) -> Optional[int]:
        """Shift one bit in; returns the bit that falls out."""
        out = self._registers[-1].q
        previous = [ff.q for ff in self._registers]
        self._registers[0].force(int(bit) & 1)
        for i in range(1, len(self._registers)):
            self._registers[i].force(previous[i - 1])
        return out


class RegisterFile(_RegisterCircuit):
    """A ``words x width`` register file with word-level read/write."""

    def __init__(self, words: int, width: int, name: str = "regfile"):
        if words <= 0 or width <= 0:
            raise ValueError("register file dimensions must be positive")
        self.words = words
        self.width = width
        self._rows = [
            [RetentionFlipFlop(name=f"{name}.r{w}[{b}]", init=0)
             for b in range(width)]
            for w in range(words)
        ]
        registers = [ff for row in self._rows for ff in row]
        netlist = Netlist(name)
        netlist.add_port("clk", PortDirection.INPUT)
        netlist.add_port("waddr", PortDirection.INPUT,
                         max(1, (words - 1).bit_length()))
        netlist.add_port("wdata", PortDirection.INPUT, width)
        netlist.add_port("rdata", PortDirection.OUTPUT, width)
        netlist.add_cells("rsdff", words * width, group="core")
        netlist.add_cells("and2", words, group="core")
        netlist.add_cells("mux2", width * max(words - 1, 1), group="core")
        super().__init__(name, registers, netlist)

    def write(self, address: int, value: int) -> None:
        """Write an integer word at ``address``."""
        if not (0 <= address < self.words):
            raise IndexError(f"address {address} out of range")
        for i, ff in enumerate(self._rows[address]):
            ff.force((value >> i) & 1)

    def read(self, address: int) -> int:
        """Read the integer word at ``address``."""
        if not (0 <= address < self.words):
            raise IndexError(f"address {address} out of range")
        return sum((ff.q or 0) << i
                   for i, ff in enumerate(self._rows[address]))


class RandomStateCircuit(_RegisterCircuit):
    """An opaque block of ``num_registers`` randomly initialised flops.

    Used to emulate "arbitrary power-gated logic" in sweeps where only
    the register count matters (e.g. the Fig. 10 correction-capability
    study over 1000 flip-flops).
    """

    def __init__(self, num_registers: int, seed: Optional[int] = None,
                 comb_gates_per_ff: float = 2.0, name: str = "randblock"):
        if num_registers <= 0:
            raise ValueError("register count must be positive")
        rng = random.Random(seed)
        registers = [
            RetentionFlipFlop(name=f"{name}.ff[{i}]", init=rng.randint(0, 1))
            for i in range(num_registers)
        ]
        netlist = Netlist(name)
        netlist.add_port("clk", PortDirection.INPUT)
        netlist.add_cells("rsdff", num_registers, group="core")
        comb = int(round(comb_gates_per_ff * num_registers))
        netlist.add_cells("nand2", comb // 2, group="core")
        netlist.add_cells("nor2", comb - comb // 2, group="core")
        super().__init__(name, registers, netlist)
        self.seed = seed

    def randomize(self, seed: Optional[int] = None) -> None:
        """Re-randomise every register value."""
        rng = random.Random(seed if seed is not None else self.seed)
        for ff in self._registers:
            ff.force(rng.randint(0, 1))


def make_counter(width: int = 16, name: str = "counter") -> Counter:
    """Create a ``width``-bit binary counter circuit."""
    return Counter(width, name=name)


def make_shift_register(length: int = 64,
                        name: str = "shiftreg") -> ShiftRegister:
    """Create a ``length``-bit shift register circuit."""
    return ShiftRegister(length, name=name)


def make_register_file(words: int = 16, width: int = 32,
                       name: str = "regfile") -> RegisterFile:
    """Create a ``words x width`` register file circuit."""
    return RegisterFile(words, width, name=name)


def make_random_state_circuit(num_registers: int = 1000,
                              seed: Optional[int] = None,
                              name: str = "randblock") -> RandomStateCircuit:
    """Create an opaque block of randomly initialised registers."""
    return RandomStateCircuit(num_registers, seed=seed, name=name)


__all__ = [
    "Counter",
    "ShiftRegister",
    "RegisterFile",
    "RandomStateCircuit",
    "make_counter",
    "make_shift_register",
    "make_register_file",
    "make_random_state_circuit",
]
