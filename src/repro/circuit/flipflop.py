"""Flip-flop models: plain, scan-enabled and state-retention.

The paper's Fig. 1 shows a state-retention flip-flop: the master
flip-flop is built from low-Vt transistors and powered from the gated
rail (fast but leaky, loses state in sleep), while the slave retention
latch is built from high-Vt transistors on the always-on rail (slow but
low leakage, keeps state in sleep).  A ``RETAIN`` control copies master
to slave before sleep and slave back to master before resuming active
operation.

These models are *cycle-level*: they expose ``capture`` / ``shift``
operations rather than modelling individual transistors.  Supply-droop
induced corruption of the retention latch is applied externally by the
fault models in :mod:`repro.faults` and :mod:`repro.power.retention`.
"""

from __future__ import annotations

import enum
from typing import Optional


class PowerState(enum.Enum):
    """Power state of the gated rail feeding a flip-flop's master stage."""

    #: Gated rail energised; the master flip-flop holds valid data.
    ON = "on"
    #: Gated rail collapsed; the master flip-flop's content is unknown.
    OFF = "off"


class DFlipFlop:
    """A plain positive-edge D flip-flop.

    The stored value is an integer in ``{0, 1}`` or ``None`` for the
    unknown value ``X`` (e.g. before the first clock edge or after a
    power-down of a non-retention flop).
    """

    __slots__ = ("name", "_q")

    def __init__(self, name: str = "", init: Optional[int] = None):
        self.name = name
        self._q: Optional[int] = self._check(init)

    @staticmethod
    def _check(value: Optional[int]) -> Optional[int]:
        if value is None:
            return None
        v = int(value)
        if v not in (0, 1):
            raise ValueError(f"flip-flop values must be 0, 1 or None; got {value!r}")
        return v

    @property
    def q(self) -> Optional[int]:
        """Current output value (None models the unknown value X)."""
        return self._q

    def clock(self, d: Optional[int]) -> Optional[int]:
        """Apply one clock edge capturing ``d``; returns the new output."""
        self._q = self._check(d)
        return self._q

    def reset(self, value: int = 0) -> None:
        """Synchronous reset to ``value``."""
        self._q = self._check(value)

    def force(self, value: Optional[int]) -> None:
        """Directly overwrite the stored value (used by fault injection)."""
        self._q = self._check(value)

    def flip(self) -> None:
        """Invert the stored bit (single-event-upset style corruption)."""
        if self._q is not None:
            self._q ^= 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, q={self._q!r})"


class ScanFlipFlop(DFlipFlop):
    """A mux-D scan flip-flop.

    In functional mode (``se = 0``) the flop captures its functional
    ``d`` input; in scan mode (``se = 1``) it captures the serial scan
    input ``si`` instead.  Scan insertion replaces every system flip-flop
    with one of these (paper Section II).
    """

    __slots__ = ()

    def clock_scan(self, d: Optional[int], si: Optional[int],
                   se: int) -> Optional[int]:
        """One clock edge with explicit scan-enable selection."""
        return self.clock(si if se else d)

    def shift(self, si: Optional[int]) -> Optional[int]:
        """Scan-shift: capture ``si`` and return the *previous* output.

        This is the natural primitive for chain shifting -- the value
        that leaves this flop on a shift cycle is the value it held
        before the clock edge.
        """
        previous = self._q
        self.clock(si)
        return previous


class RetentionFlipFlop(ScanFlipFlop):
    """State-retention scan flip-flop (paper Fig. 1).

    Adds an always-on slave retention latch and a ``RETAIN`` control:

    * :meth:`retain` (RETAIN := 1) copies the master value into the
      retention latch; this happens during the sleep sequence.
    * :meth:`power_off` collapses the gated rail -- the master value
      becomes unknown, the retention latch keeps its value.
    * :meth:`power_on` re-energises the gated rail (master still
      unknown until restored).
    * :meth:`restore` (RETAIN := 0) copies the retention latch back into
      the master; this happens during the wake-up sequence.

    The retention latch can be corrupted externally through
    :meth:`corrupt_retention` -- this is precisely the failure mode the
    paper's methodology protects against (rush-current induced supply
    droop flipping retention latches).
    """

    __slots__ = ("_retention", "_power", "retention_margin")

    def __init__(self, name: str = "", init: Optional[int] = None,
                 retention_margin: float = 1.0):
        super().__init__(name, init)
        #: Value held by the always-on retention latch (None = unknown).
        self._retention: Optional[int] = None
        self._power = PowerState.ON
        #: Relative noise margin of this latch's retention node; used by
        #: the droop-driven upset model (1.0 = nominal).
        self.retention_margin = retention_margin

    # -- power-state bookkeeping ---------------------------------------
    @property
    def power(self) -> PowerState:
        """Power state of the gated rail feeding the master stage."""
        return self._power

    @property
    def retention_value(self) -> Optional[int]:
        """Value currently stored in the retention latch."""
        return self._retention

    def clock(self, d: Optional[int]) -> Optional[int]:
        """Clock the master; illegal while the gated rail is off."""
        if self._power is PowerState.OFF:
            raise RuntimeError(
                f"flip-flop {self.name!r} clocked while powered off")
        return super().clock(d)

    # -- retention sequence --------------------------------------------
    def retain(self) -> None:
        """RETAIN := 1 -- copy master into the retention latch."""
        if self._power is PowerState.OFF:
            raise RuntimeError(
                f"cannot retain {self.name!r}: master is powered off")
        self._retention = self._q

    def power_off(self) -> None:
        """Collapse the gated rail; master content becomes unknown."""
        self._power = PowerState.OFF
        self._q = None

    def power_on(self) -> None:
        """Re-energise the gated rail; master remains unknown until restore."""
        self._power = PowerState.ON

    def restore(self) -> None:
        """RETAIN := 0 -- copy the retention latch back into the master."""
        if self._power is PowerState.OFF:
            raise RuntimeError(
                f"cannot restore {self.name!r}: master is powered off")
        self._q = self._retention

    # -- fault hooks -----------------------------------------------------
    def corrupt_retention(self) -> None:
        """Flip the retention latch value (supply-droop induced upset)."""
        if self._retention is not None:
            self._retention ^= 1

    def force_retention(self, value: Optional[int]) -> None:
        """Directly overwrite the retention latch (fault injection)."""
        self._retention = self._check(value)


__all__ = ["PowerState", "DFlipFlop", "ScanFlipFlop", "RetentionFlipFlop"]
