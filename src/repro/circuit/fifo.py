"""Synchronous FIFO -- the paper's 32x32 case-study circuit.

The paper validates the methodology on a 32-bit wide, 32-entry deep FIFO
"because it has high density of flip-flops and no error masking": every
stored bit lives in a flip-flop and is eventually read out, so any
retention upset that goes uncorrected is architecturally visible.

The model keeps all storage (data array, read/write pointers and status
flags) in :class:`~repro.circuit.flipflop.RetentionFlipFlop` instances
so that the power-gating sequence, fault injection and scan access all
operate on the real architectural state.  With the default 32x32
geometry the FIFO has ``32 * 32 = 1024`` data flops plus 16 control
flops, i.e. 1040 registers --- matching the paper's 80 chains x 13 flops
configuration.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.circuit.base import SequentialCircuit
from repro.circuit.flipflop import RetentionFlipFlop
from repro.circuit.netlist import Netlist, PortDirection


class FIFOError(RuntimeError):
    """Raised on an illegal FIFO operation (push when full, pop when empty)."""


class SyncFIFO(SequentialCircuit):
    """A synchronous FIFO with register-based storage.

    Parameters
    ----------
    width:
        Data word width in bits (paper: 32).
    depth:
        Number of entries (paper: 32).
    name:
        Module name used for registers and the netlist.
    """

    def __init__(self, width: int = 32, depth: int = 32,
                 name: str = "fifo32x32"):
        if width <= 0 or depth <= 0:
            raise ValueError("FIFO width and depth must be positive")
        self.name = name
        self.width = width
        self.depth = depth
        self._ptr_bits = max(1, (depth - 1).bit_length()) + 1

        # Data array: depth x width retention flip-flops.
        self._memory: List[List[RetentionFlipFlop]] = [
            [RetentionFlipFlop(name=f"{name}.mem[{row}][{col}]", init=0)
             for col in range(width)]
            for row in range(depth)
        ]
        # Read/write pointers (one wrap bit wider than the address).
        self._wr_ptr = [RetentionFlipFlop(name=f"{name}.wr_ptr[{i}]", init=0)
                        for i in range(self._ptr_bits)]
        self._rd_ptr = [RetentionFlipFlop(name=f"{name}.rd_ptr[{i}]", init=0)
                        for i in range(self._ptr_bits)]
        # Status flags and sticky error flags.
        self._full_flag = RetentionFlipFlop(name=f"{name}.full", init=0)
        self._empty_flag = RetentionFlipFlop(name=f"{name}.empty", init=1)
        self._overflow_flag = RetentionFlipFlop(name=f"{name}.overflow", init=0)
        self._underflow_flag = RetentionFlipFlop(name=f"{name}.underflow", init=0)

        self._registers = (
            [ff for row in self._memory for ff in row]
            + self._wr_ptr + self._rd_ptr
            + [self._full_flag, self._empty_flag,
               self._overflow_flag, self._underflow_flag])
        self._netlist = self._build_netlist()

    # ------------------------------------------------------------------
    # SequentialCircuit interface
    # ------------------------------------------------------------------
    @property
    def registers(self) -> List[RetentionFlipFlop]:
        """All FIFO registers: data array, pointers, then flags."""
        return self._registers

    @property
    def netlist(self) -> Netlist:
        """Structural netlist of the FIFO (for cost accounting)."""
        return self._netlist

    def _build_netlist(self) -> Netlist:
        netlist = Netlist(self.name)
        netlist.add_port("clk", PortDirection.INPUT)
        netlist.add_port("rst_n", PortDirection.INPUT)
        netlist.add_port("wr_en", PortDirection.INPUT)
        netlist.add_port("rd_en", PortDirection.INPUT)
        netlist.add_port("din", PortDirection.INPUT, self.width)
        netlist.add_port("dout", PortDirection.OUTPUT, self.width)
        netlist.add_port("full", PortDirection.OUTPUT)
        netlist.add_port("empty", PortDirection.OUTPUT)

        group = "fifo"
        # Storage and control registers are retention scan flip-flops.
        netlist.add_cells("rsdff", len(self._registers), group=group)
        # Write-address decoder: one AND per row (enable gating).
        netlist.add_cells("and2", self.depth, group=group)
        # Per-bit write enables for each row.
        netlist.add_cells("and2", self.depth, group=group)
        # Read multiplexer: a mux tree per output bit.
        netlist.add_cells("mux2", self.width * max(self.depth - 1, 1),
                          group=group)
        # Pointer increment / compare logic.
        netlist.add_cells("xor2", 4 * self._ptr_bits, group=group)
        netlist.add_cells("and2", 4 * self._ptr_bits, group=group)
        netlist.add_cells("inv", 2 * self._ptr_bits, group=group)
        # Flag generation.
        netlist.add_cells("nor2", 4, group=group)
        netlist.add_cells("or2", 4, group=group)
        return netlist

    # ------------------------------------------------------------------
    # Pointer helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _read_value(flops: Sequence[RetentionFlipFlop]) -> int:
        value = 0
        for i, ff in enumerate(flops):
            bit = ff.q
            if bit is None:
                raise FIFOError(
                    f"register {ff.name} holds an unknown value")
            value |= (bit & 1) << i
        return value

    @staticmethod
    def _write_value(flops: Sequence[RetentionFlipFlop], value: int) -> None:
        for i, ff in enumerate(flops):
            ff.force((value >> i) & 1)

    @property
    def write_pointer(self) -> int:
        """Current write pointer (includes the wrap bit)."""
        return self._read_value(self._wr_ptr)

    @property
    def read_pointer(self) -> int:
        """Current read pointer (includes the wrap bit)."""
        return self._read_value(self._rd_ptr)

    @property
    def occupancy(self) -> int:
        """Number of words currently stored."""
        span = 1 << self._ptr_bits
        return (self.write_pointer - self.read_pointer) % span

    @property
    def is_full(self) -> bool:
        """True when the FIFO holds ``depth`` words."""
        return self.occupancy >= self.depth

    @property
    def is_empty(self) -> bool:
        """True when the FIFO holds no words."""
        return self.occupancy == 0

    def _update_flags(self) -> None:
        self._full_flag.force(1 if self.is_full else 0)
        self._empty_flag.force(1 if self.is_empty else 0)

    # ------------------------------------------------------------------
    # Functional operations
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Synchronous reset: clears storage, pointers and flags."""
        for row in self._memory:
            for ff in row:
                ff.reset(0)
        self._write_value(self._wr_ptr, 0)
        self._write_value(self._rd_ptr, 0)
        self._full_flag.force(0)
        self._empty_flag.force(1)
        self._overflow_flag.force(0)
        self._underflow_flag.force(0)

    def push(self, word: Sequence[int]) -> bool:
        """Write one word; returns False (and sets overflow) when full."""
        if len(word) != self.width:
            raise ValueError(
                f"expected a {self.width}-bit word, got {len(word)} bits")
        if self.is_full:
            self._overflow_flag.force(1)
            return False
        row = self.write_pointer % self.depth
        for ff, bit in zip(self._memory[row], word):
            v = int(bit)
            if v not in (0, 1):
                raise ValueError(f"data bits must be 0 or 1, got {bit!r}")
            ff.force(v)
        self._write_value(self._wr_ptr,
                          (self.write_pointer + 1) % (1 << self._ptr_bits))
        self._update_flags()
        return True

    def pop(self) -> Optional[List[int]]:
        """Read one word; returns None (and sets underflow) when empty."""
        if self.is_empty:
            self._underflow_flag.force(1)
            return None
        row = self.read_pointer % self.depth
        word: List[int] = []
        for ff in self._memory[row]:
            bit = ff.q
            if bit is None:
                raise FIFOError(
                    f"stored data in row {row} holds an unknown value")
            word.append(bit)
        self._write_value(self._rd_ptr,
                          (self.read_pointer + 1) % (1 << self._ptr_bits))
        self._update_flags()
        return word

    def push_int(self, value: int) -> bool:
        """Write an integer word (LSB-first bit expansion)."""
        bits = [(value >> i) & 1 for i in range(self.width)]
        return self.push(bits)

    def pop_int(self) -> Optional[int]:
        """Read a word as an integer (LSB-first packing)."""
        word = self.pop()
        if word is None:
            return None
        return sum(bit << i for i, bit in enumerate(word))

    def peek(self, offset: int = 0) -> Optional[List[int]]:
        """Read the word ``offset`` entries after the read pointer,
        without consuming it."""
        if offset < 0 or offset >= self.occupancy:
            return None
        row = (self.read_pointer + offset) % self.depth
        return [ff.q if ff.q is not None else 0 for ff in self._memory[row]]


__all__ = ["SyncFIFO", "FIFOError"]
