"""Combinational gate primitives.

Gates serve two purposes in this reproduction:

1. functional evaluation where small combinational clouds are needed
   (the error-injection AND/XOR network of the paper's Fig. 6, the
   correction XORs on the scan-in path);
2. structural accounting -- the synthesis-flow emulation counts gate
   instances and prices them with the 120 nm technology model to
   reproduce the paper's area/power tables.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Sequence


class GateType(enum.Enum):
    """Supported combinational cell types."""

    INV = "inv"
    BUF = "buf"
    AND2 = "and2"
    NAND2 = "nand2"
    OR2 = "or2"
    NOR2 = "nor2"
    XOR2 = "xor2"
    XNOR2 = "xnor2"
    MUX2 = "mux2"
    MUX3 = "mux3"
    AND_OR_INV = "aoi22"


def _reduce(op: Callable[[int, int], int], inputs: Sequence[int]) -> int:
    acc = int(inputs[0]) & 1
    for x in inputs[1:]:
        acc = op(acc, int(x) & 1) & 1
    return acc


_EVALUATORS: Dict[GateType, Callable[[Sequence[int]], int]] = {
    GateType.INV: lambda ins: 1 - (int(ins[0]) & 1),
    GateType.BUF: lambda ins: int(ins[0]) & 1,
    GateType.AND2: lambda ins: _reduce(lambda a, b: a & b, ins),
    GateType.NAND2: lambda ins: 1 - _reduce(lambda a, b: a & b, ins),
    GateType.OR2: lambda ins: _reduce(lambda a, b: a | b, ins),
    GateType.NOR2: lambda ins: 1 - _reduce(lambda a, b: a | b, ins),
    GateType.XOR2: lambda ins: _reduce(lambda a, b: a ^ b, ins),
    GateType.XNOR2: lambda ins: 1 - _reduce(lambda a, b: a ^ b, ins),
    # MUX2: inputs are (a, b, sel) -> b if sel else a
    GateType.MUX2: lambda ins: (int(ins[1]) if int(ins[2]) else int(ins[0])) & 1,
    # MUX3: inputs are (a, b, c, sel0, sel1) with sel encoding 0/1/2
    GateType.MUX3: lambda ins: (
        int(ins[(int(ins[3]) & 1) + 2 * (int(ins[4]) & 1)]) & 1),
    GateType.AND_OR_INV: lambda ins: 1 - (
        ((int(ins[0]) & int(ins[1])) | (int(ins[2]) & int(ins[3]))) & 1),
}

#: Minimum number of inputs each gate type expects.
GATE_ARITY: Dict[GateType, int] = {
    GateType.INV: 1,
    GateType.BUF: 1,
    GateType.AND2: 2,
    GateType.NAND2: 2,
    GateType.OR2: 2,
    GateType.NOR2: 2,
    GateType.XOR2: 2,
    GateType.XNOR2: 2,
    GateType.MUX2: 3,
    GateType.MUX3: 5,
    GateType.AND_OR_INV: 4,
}


class Gate:
    """A combinational gate instance with a type and a name.

    The gate is purely functional; connectivity is tracked by the
    :class:`~repro.circuit.netlist.Netlist` when structural information
    is needed.
    """

    __slots__ = ("name", "gate_type")

    def __init__(self, gate_type: GateType, name: str = ""):
        if not isinstance(gate_type, GateType):
            raise TypeError(f"gate_type must be a GateType, got {gate_type!r}")
        self.gate_type = gate_type
        self.name = name

    def evaluate(self, inputs: Sequence[int]) -> int:
        """Evaluate the gate function on a sequence of 0/1 inputs."""
        arity = GATE_ARITY[self.gate_type]
        if len(inputs) < arity:
            raise ValueError(
                f"{self.gate_type.value} expects at least {arity} inputs, "
                f"got {len(inputs)}")
        return _EVALUATORS[self.gate_type](inputs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gate({self.gate_type.value!r}, name={self.name!r})"


def evaluate_gate(gate_type: GateType, inputs: Sequence[int]) -> int:
    """Functional shortcut: evaluate ``gate_type`` on ``inputs``."""
    return Gate(gate_type).evaluate(inputs)


__all__ = ["GateType", "Gate", "GATE_ARITY", "evaluate_gate"]
