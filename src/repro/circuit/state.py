"""State snapshots of sequential circuits.

A :class:`StateSnapshot` is an immutable record of every register value
of a design at a point in time.  It is the currency used by the
validation campaign to decide whether a sleep/wake cycle preserved the
architectural state, independently of whether the monitoring logic
*reported* anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class StateSnapshot:
    """Immutable register-state snapshot of a sequential circuit.

    Attributes
    ----------
    values:
        Register values in register order; ``None`` encodes the unknown
        value X.
    names:
        Register names, aligned with ``values``.
    """

    values: Tuple[Optional[int], ...]
    names: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.names and len(self.names) != len(self.values):
            raise ValueError(
                "names and values must have the same length when names "
                "are provided")

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index: int) -> Optional[int]:
        return self.values[index]

    @property
    def has_unknowns(self) -> bool:
        """True when any register holds the unknown value X."""
        return any(v is None for v in self.values)

    def diff(self, other: "StateSnapshot") -> Tuple[int, ...]:
        """Indices at which two snapshots differ (unknowns always differ)."""
        if len(other) != len(self):
            raise ValueError("snapshots must have equal length to diff")
        return tuple(
            i for i, (a, b) in enumerate(zip(self.values, other.values))
            if a != b)

    def hamming_distance(self, other: "StateSnapshot") -> int:
        """Number of differing register values."""
        return len(self.diff(other))

    def as_dict(self) -> Dict[str, Optional[int]]:
        """Name-to-value mapping (names must be present)."""
        if not self.names:
            raise ValueError("snapshot has no register names")
        return dict(zip(self.names, self.values))

    def with_flips(self, positions: Tuple[int, ...]) -> "StateSnapshot":
        """Return a copy with the bits at ``positions`` inverted."""
        values = list(self.values)
        for pos in positions:
            if values[pos] is not None:
                values[pos] ^= 1
        return StateSnapshot(values=tuple(values), names=self.names)


__all__ = ["StateSnapshot"]
