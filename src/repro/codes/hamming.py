"""Hamming(n, k) single-error-correcting block codes.

The paper evaluates four members of the Hamming family --- (7,4),
(15,11), (31,26) and (63,57) --- as the correction option of the state
monitoring block (Tables II and III, Fig. 10).  Any code with
``n = 2**r - 1`` and ``k = n - r`` for ``r >= 2`` is supported here.

The implementation is *systematic*: :meth:`HammingCode.encode` returns
the ``k`` data bits first, followed by ``r`` parity bits.  Internally
the classic position-indexed construction is used (parity bits at
power-of-two positions of the 1-based codeword), and a fixed permutation
maps between the systematic layout used by the monitoring hardware and
the positional layout used for syndrome computation.

The decoder corrects any single-bit error (in data *or* parity) and, by
construction of a perfect code, maps any multi-bit error either to a
wrong "correction" or occasionally to a clean syndrome --- exactly the
behaviour that makes clustered multi-bit bursts uncorrectable in the
paper's second FPGA experiment.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.codes.base import (
    Bits,
    BlockCode,
    CodeError,
    DecodeResult,
    DecodeStatus,
    as_bits,
)

#: The (n, k) pairs studied in the paper, in decreasing redundancy order.
PAPER_HAMMING_CODES: Tuple[Tuple[int, int], ...] = (
    (7, 4),
    (15, 11),
    (31, 26),
    (63, 57),
)


def _is_power_of_two(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


class HammingCode(BlockCode):
    """A Hamming single-error-correcting code with parameters ``(n, k)``.

    Parameters
    ----------
    n:
        Codeword length; must equal ``2**r - 1`` for some integer
        ``r >= 2``.
    k:
        Data bits per codeword; must equal ``n - r``.

    Examples
    --------
    >>> code = HammingCode(7, 4)
    >>> cw = code.encode([1, 0, 1, 1])
    >>> code.decode(cw).is_clean
    True
    >>> corrupted = list(cw); corrupted[2] ^= 1
    >>> result = code.decode(corrupted)
    >>> result.status.name, result.data
    ('CORRECTED', (1, 0, 1, 1))
    """

    correctable_errors = 1

    def __init__(self, n: int = 7, k: int = 4):
        r = n - k
        if r < 2:
            raise CodeError(
                f"Hamming codes need at least 2 parity bits, got r={r}")
        if n != (1 << r) - 1:
            raise CodeError(
                f"invalid Hamming parameters ({n},{k}): "
                f"n must equal 2**r - 1 = {(1 << r) - 1} for r = {r}")
        self.n = n
        self.k = k
        # Positional layout: 1-based positions 1..n; parity bits live at
        # power-of-two positions, data bits fill the rest in order.
        self._data_positions: List[int] = [
            p for p in range(1, n + 1) if not _is_power_of_two(p)]
        self._parity_positions: List[int] = [
            p for p in range(1, n + 1) if _is_power_of_two(p)]
        # Map each positional index back to its slot in the systematic
        # (data-first) layout, so decode can report corrections in terms
        # of the layout the monitoring hardware actually uses.
        self._position_to_systematic: Dict[int, int] = {}
        for idx, pos in enumerate(self._data_positions):
            self._position_to_systematic[pos] = idx
        for idx, pos in enumerate(self._parity_positions):
            self._position_to_systematic[pos] = self.k + idx

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def _parity_for_positions(self, positional: Dict[int, int]) -> List[int]:
        """Compute the parity bits for a positional data assignment."""
        parity = []
        for p_idx, p_pos in enumerate(self._parity_positions):
            mask = 1 << p_idx
            acc = 0
            for pos in range(1, self.n + 1):
                if pos == p_pos:
                    continue
                if pos & mask:
                    acc ^= positional.get(pos, 0)
            parity.append(acc)
        return parity

    def encode(self, data: Iterable[int]) -> Bits:
        """Encode ``k`` data bits into the systematic ``n``-bit codeword."""
        data_t = as_bits(data)
        if len(data_t) != self.k:
            raise CodeError(
                f"expected {self.k} data bits, got {len(data_t)}")
        positional = {
            pos: bit for pos, bit in zip(self._data_positions, data_t)}
        parity = self._parity_for_positions(positional)
        return data_t + tuple(parity)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def syndrome(self, codeword: Iterable[int]) -> int:
        """Compute the syndrome of a received systematic codeword.

        A zero syndrome means "looks clean"; a non-zero syndrome is the
        1-based *positional* index of the (assumed single) erroneous
        bit.
        """
        cw = as_bits(codeword)
        if len(cw) != self.n:
            raise CodeError(
                f"expected {self.n} codeword bits, got {len(cw)}")
        positional: Dict[int, int] = {}
        for idx, pos in enumerate(self._data_positions):
            positional[pos] = cw[idx]
        for idx, pos in enumerate(self._parity_positions):
            positional[pos] = cw[self.k + idx]
        syndrome = 0
        for p_idx, p_pos in enumerate(self._parity_positions):
            mask = 1 << p_idx
            acc = 0
            for pos in range(1, self.n + 1):
                if pos & mask:
                    acc ^= positional[pos]
            if acc:
                syndrome |= mask
        return syndrome

    def decode(self, codeword: Iterable[int]) -> DecodeResult:
        """Decode a received codeword, correcting a single-bit error."""
        cw = list(as_bits(codeword))
        if len(cw) != self.n:
            raise CodeError(
                f"expected {self.n} codeword bits, got {len(cw)}")
        syn = self.syndrome(cw)
        if syn == 0:
            return DecodeResult(
                status=DecodeStatus.NO_ERROR,
                data=tuple(cw[:self.k]),
                syndrome=0)
        if syn > self.n:
            # Cannot happen for a true Hamming code (syndrome is r bits
            # wide and n = 2**r - 1) but kept as a guard for subclasses.
            return DecodeResult(
                status=DecodeStatus.DETECTED,
                data=tuple(cw[:self.k]),
                syndrome=syn)
        systematic_idx = self._position_to_systematic[syn]
        cw[systematic_idx] ^= 1
        return DecodeResult(
            status=DecodeStatus.CORRECTED,
            data=tuple(cw[:self.k]),
            corrected_positions=(systematic_idx,),
            syndrome=syn)

    # ------------------------------------------------------------------
    # Introspection helpers used by the cost model and the RTL emitter
    # ------------------------------------------------------------------
    def parity_equations(self) -> List[List[int]]:
        """Data-bit indices feeding each parity bit.

        ``parity_equations()[j]`` lists the systematic data-bit indices
        XORed together to form parity bit ``j``.  Used by the RTL
        emitter to print the encoder's ``assign`` equations and by the
        tests to cross-check the generated hardware against the
        software encoder.
        """
        equations: List[List[int]] = []
        for p_idx, _p_pos in enumerate(self._parity_positions):
            mask = 1 << p_idx
            equations.append([
                data_idx
                for data_idx, pos in enumerate(self._data_positions)
                if pos & mask])
        return equations

    def encoder_xor_count(self) -> int:
        """Number of 2-input XOR gates in a flat parallel encoder.

        Each parity bit is the XOR of the data bits whose positional
        index includes that parity position's power of two; a tree of
        ``fanin - 1`` two-input XORs realises each.
        """
        total = 0
        for p_idx, p_pos in enumerate(self._parity_positions):
            mask = 1 << p_idx
            fanin = sum(
                1 for pos in self._data_positions if pos & mask)
            total += max(fanin - 1, 0)
        return total

    def decoder_xor_count(self) -> int:
        """XOR gates in the syndrome computation (parallel decoder)."""
        total = 0
        for p_idx, p_pos in enumerate(self._parity_positions):
            mask = 1 << p_idx
            fanin = sum(1 for pos in range(1, self.n + 1) if pos & mask)
            total += max(fanin - 1, 0)
        return total

    def corrector_gate_count(self) -> int:
        """Gates in the error-location decoder plus correction XORs.

        One ``r``-input AND-style decode per codeword bit position plus
        one XOR per data bit on the correction path.
        """
        decode_gates = self.n * max(self.r - 1, 1)
        correction_xors = self.k
        return decode_gates + correction_xors

    @property
    def name(self) -> str:
        """Canonical name, e.g. ``"hamming(7,4)"``."""
        return f"hamming({self.n},{self.k})"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, HammingCode)
                and type(other) is type(self)
                and other.n == self.n and other.k == self.k)

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.n, self.k))


__all__ = ["HammingCode", "PAPER_HAMMING_CODES"]
