"""Error detection and correction codes for scan-stream state monitoring.

The state monitoring block of the paper encodes the power-gated circuit's
state as it is shifted out through the scan chains, and checks it again
after wake-up.  Two families of codes are evaluated in the paper:

* :class:`HammingCode` -- single-error-correcting block codes.  The
  monitoring block stores ``n - k`` parity bits for every ``k``-bit slice
  of scan data, which makes correction possible at a substantial area
  cost (paper Table II / Table III).
* :class:`CRCCode` -- a cyclic redundancy check over the whole scan
  stream.  Only 16 bits of signature need to be stored per monitoring
  block, giving a very small area overhead, but errors can only be
  *detected*, not located (paper Table I).

All codes implement the :class:`~repro.codes.base.BlockCode` or
:class:`~repro.codes.base.StreamCode` interfaces so that the monitoring
logic (:mod:`repro.core.monitor`) is agnostic of the concrete code.

:mod:`repro.codes.packed` provides bit-exact packed-integer fast paths
(table-driven byte-wise CRC, mask-based Hamming/SECDED via popcount)
used by the :mod:`repro.fastpath` simulation engine.
"""

from repro.codes.base import (
    BlockCode,
    StreamCode,
    DecodeResult,
    DecodeStatus,
    CodeError,
)
from repro.codes.hamming import HammingCode
from repro.codes.secded import SECDEDCode
from repro.codes.parity import ParityCode
from repro.codes.crc import CRCCode, CRC_POLYNOMIALS
from repro.codes.interleave import InterleavedCode
from repro.codes.packed import (
    PackedCRC,
    PackedHamming,
    PackedSECDED,
    packed_block_code,
    packed_stream_code,
)
from repro.codes.registry import get_code, register_code, available_codes

__all__ = [
    "BlockCode",
    "StreamCode",
    "DecodeResult",
    "DecodeStatus",
    "CodeError",
    "HammingCode",
    "SECDEDCode",
    "ParityCode",
    "CRCCode",
    "CRC_POLYNOMIALS",
    "InterleavedCode",
    "PackedCRC",
    "PackedHamming",
    "PackedSECDED",
    "packed_block_code",
    "packed_stream_code",
    "get_code",
    "register_code",
    "available_codes",
]
