"""Name-based registry of monitoring codes.

The reliability-aware synthesis flow (paper Fig. 4) is configured with a
textual quality/configuration file; the code to use is one of its
fields.  This registry resolves those names ("crc16",
"hamming(7,4)", ...) to constructed code objects.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Union

from repro.codes.base import BlockCode, CodeError, StreamCode
from repro.codes.crc import CRC_POLYNOMIALS, CRCCode
from repro.codes.hamming import PAPER_HAMMING_CODES, HammingCode
from repro.codes.parity import ParityCode
from repro.codes.secded import SECDEDCode

CodeLike = Union[BlockCode, StreamCode]

_FACTORIES: Dict[str, Callable[[], CodeLike]] = {}

_HAMMING_RE = re.compile(r"^hamming\((\d+),(\d+)\)$")
_SECDED_RE = re.compile(r"^secded\((\d+),(\d+)\)$")
_PARITY_RE = re.compile(r"^parity\((\d+)\)$")


def register_code(name: str, factory: Callable[[], CodeLike]) -> None:
    """Register a code factory under a (lower-cased) name."""
    _FACTORIES[name.lower()] = factory


def available_codes() -> List[str]:
    """Names resolvable by :func:`get_code` (registered + pattern forms)."""
    names = sorted(_FACTORIES)
    names.extend(f"hamming({n},{k})" for n, k in PAPER_HAMMING_CODES)
    names.append("secded(8,4)")
    names.append("parity(<k>)")
    return names


def get_code(name: str) -> CodeLike:
    """Resolve a code name to a constructed code object.

    Accepted forms:

    * any registered name (all entries of
      :data:`repro.codes.crc.CRC_POLYNOMIALS` are pre-registered);
    * ``"hamming(n,k)"`` for any valid Hamming parameters;
    * ``"secded(n,k)"`` where ``(n-1, k)`` are valid Hamming parameters;
    * ``"parity(k)"``.
    """
    key = name.lower().replace(" ", "")
    if key in _FACTORIES:
        return _FACTORIES[key]()
    match = _HAMMING_RE.match(key)
    if match:
        return HammingCode(int(match.group(1)), int(match.group(2)))
    match = _SECDED_RE.match(key)
    if match:
        n, k = int(match.group(1)), int(match.group(2))
        return SECDEDCode(n - 1, k)
    match = _PARITY_RE.match(key)
    if match:
        return ParityCode(int(match.group(1)))
    raise CodeError(
        f"unknown code '{name}'; known codes: {available_codes()}")


def _register_builtins() -> None:
    for crc_name in CRC_POLYNOMIALS:
        register_code(crc_name, lambda n=crc_name: CRCCode.from_name(n))
    for n, k in PAPER_HAMMING_CODES:
        register_code(f"hamming({n},{k})",
                      lambda n=n, k=k: HammingCode(n, k))
    register_code("secded(8,4)", lambda: SECDEDCode(7, 4))


_register_builtins()

__all__ = ["get_code", "register_code", "available_codes", "CodeLike"]
