"""Cyclic redundancy check codes (CRC-16 and friends).

The paper's detection-only monitoring option computes a CRC-16 signature
of the scan stream before sleep and compares it with a freshly computed
signature after wake-up (Table I).  Because only 16 signature bits are
stored per monitoring block, the area overhead is small (2.8 %--9.2 %),
but a mismatch carries no information about *where* the error is, so the
recovery has to be done in software (e.g. re-load state from memory).

The implementation provides both a bit-serial LFSR update (mirroring the
hardware realisation and usable through
:class:`repro.codes.base.StreamState`) and a whole-stream convenience
method.  Both are exercised against each other in the test suite.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.codes.base import (
    Bits,
    CodeError,
    StreamCode,
    as_bits,
    int_to_bits,
)

#: Well-known CRC polynomials (normal/MSB-first representation, without
#: the implicit leading 1).  The paper uses "CRC-16", which in the DFT
#: literature conventionally refers to the CRC-16-IBM polynomial
#: ``x^16 + x^15 + x^2 + 1``.
CRC_POLYNOMIALS: Dict[str, Dict[str, int]] = {
    "crc16": {"width": 16, "poly": 0x8005, "init": 0x0000},
    "crc16-ibm": {"width": 16, "poly": 0x8005, "init": 0x0000},
    "crc16-ccitt": {"width": 16, "poly": 0x1021, "init": 0xFFFF},
    "crc8": {"width": 8, "poly": 0x07, "init": 0x00},
    "crc12": {"width": 12, "poly": 0x80F, "init": 0x000},
    "crc32": {"width": 32, "poly": 0x04C11DB7, "init": 0xFFFFFFFF},
}


class CRCCode(StreamCode):
    """A cyclic redundancy check over an arbitrary-length bit stream.

    Parameters
    ----------
    width:
        Signature width in bits (e.g. 16 for CRC-16).
    poly:
        Generator polynomial in normal (MSB-first) form without the
        implicit leading 1, e.g. ``0x8005`` for CRC-16-IBM.
    init:
        Initial value of the signature register.

    Examples
    --------
    >>> crc = CRCCode.from_name("crc16")
    >>> sig = crc.signature([1, 0, 1, 1, 0, 0, 1, 0])
    >>> crc.verify([1, 0, 1, 1, 0, 0, 1, 0], sig).is_clean
    True
    >>> crc.verify([1, 0, 1, 1, 0, 1, 1, 0], sig).status.name
    'DETECTED'
    """

    correctable_errors = 0

    def __init__(self, width: int = 16, poly: int = 0x8005, init: int = 0,
                 name: str = "crc16"):
        if width <= 0:
            raise CodeError("CRC width must be positive")
        if poly <= 0 or poly >= (1 << width):
            raise CodeError(
                f"polynomial 0x{poly:x} does not fit in {width} bits")
        if not (0 <= init < (1 << width)):
            raise CodeError(
                f"initial value 0x{init:x} does not fit in {width} bits")
        self.width = width
        self.poly = poly
        self.init = init
        self.signature_bits = width
        self._name = name

    @classmethod
    def from_name(cls, name: str) -> "CRCCode":
        """Construct one of the well-known CRCs from :data:`CRC_POLYNOMIALS`."""
        key = name.lower()
        if key not in CRC_POLYNOMIALS:
            raise CodeError(
                f"unknown CRC '{name}'; known: {sorted(CRC_POLYNOMIALS)}")
        params = CRC_POLYNOMIALS[key]
        return cls(width=params["width"], poly=params["poly"],
                   init=params["init"], name=key)

    @property
    def name(self) -> str:
        """Canonical name, e.g. ``"crc16"``."""
        return self._name

    # ------------------------------------------------------------------
    # Bit-serial interface (hardware-equivalent LFSR update)
    # ------------------------------------------------------------------
    def _initial_register(self) -> int:
        return self.init

    def _step(self, register: int, bit: int) -> int:
        """One LFSR shift of the signature register with input ``bit``."""
        msb = (register >> (self.width - 1)) & 1
        feedback = msb ^ (bit & 1)
        register = (register << 1) & ((1 << self.width) - 1)
        if feedback:
            register ^= self.poly
        return register

    def _finalise(self, register: int) -> Bits:
        return int_to_bits(register, self.width)

    # ------------------------------------------------------------------
    # Whole-stream interface
    # ------------------------------------------------------------------
    def signature(self, stream: Iterable[int]) -> Bits:
        """Compute the CRC signature of a complete bit stream."""
        register = self.init
        for bit in as_bits(stream):
            register = self._step(register, bit)
        return self._finalise(register)

    def signature_int(self, stream: Iterable[int]) -> int:
        """Signature as an integer (MSB-first packing of the bits)."""
        register = self.init
        for bit in as_bits(stream):
            register = self._step(register, bit)
        return register

    # ------------------------------------------------------------------
    # Introspection helpers used by the cost model
    # ------------------------------------------------------------------
    def register_bit_count(self) -> int:
        """Flip-flops in one signature register."""
        return self.width

    def feedback_xor_count(self) -> int:
        """2-input XOR gates in the LFSR feedback network.

        One XOR per set bit of the polynomial plus one for folding the
        input bit into the feedback path.
        """
        return bin(self.poly).count("1") + 1

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, CRCCode)
                and other.width == self.width
                and other.poly == self.poly
                and other.init == self.init)

    def __hash__(self) -> int:
        return hash(("CRCCode", self.width, self.poly, self.init))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CRCCode(width={self.width}, poly=0x{self.poly:X}, "
                f"init=0x{self.init:X})")


__all__ = ["CRCCode", "CRC_POLYNOMIALS"]
