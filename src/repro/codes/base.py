"""Common interfaces for error detection and correction codes.

Two interfaces are defined:

* :class:`BlockCode` -- operates on fixed-size blocks of ``k`` data bits
  producing ``n``-bit codewords.  Used by the Hamming family where the
  state monitoring block encodes one ``k``-bit scan slice per clock
  cycle.
* :class:`StreamCode` -- operates on an arbitrarily long bit stream and
  produces a fixed-size signature (e.g. CRC-16).  Used for
  detection-only monitoring where a single signature summarises the
  whole scan stream of a monitoring block.

Both interfaces consume and produce *bit sequences*, represented as
tuples of integers in ``{0, 1}``.  Tuples are used (rather than lists)
so that codewords are hashable and immutable, which keeps the monitoring
logic free of accidental aliasing.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, Sequence, Tuple

Bits = Tuple[int, ...]


class CodeError(ValueError):
    """Raised when a code is configured or used inconsistently.

    Examples: constructing a Hamming code with an invalid ``(n, k)``
    pair, or decoding a block whose length does not match ``n``.
    """


def as_bits(bits: Iterable[int]) -> Bits:
    """Normalise an iterable of 0/1 integers into a :data:`Bits` tuple.

    Raises :class:`CodeError` if any element is not 0 or 1.  Accepts
    booleans and numpy integer scalars.
    """
    out = []
    for b in bits:
        v = int(b)
        if v not in (0, 1):
            raise CodeError(f"bit values must be 0 or 1, got {b!r}")
        out.append(v)
    return tuple(out)


def bits_to_int(bits: Sequence[int]) -> int:
    """Pack a bit sequence (MSB first) into an integer."""
    value = 0
    for b in bits:
        value = (value << 1) | (int(b) & 1)
    return value


def int_to_bits(value: int, width: int) -> Bits:
    """Unpack ``value`` into ``width`` bits, MSB first."""
    if value < 0:
        raise CodeError("cannot convert a negative integer to bits")
    if width < 0:
        raise CodeError("width must be non-negative")
    if value >= (1 << width):
        raise CodeError(f"value {value} does not fit in {width} bits")
    return tuple((value >> (width - 1 - i)) & 1 for i in range(width))


def hamming_distance(a: Sequence[int], b: Sequence[int]) -> int:
    """Number of positions in which two equal-length bit sequences differ."""
    if len(a) != len(b):
        raise CodeError("sequences must have equal length")
    return sum(1 for x, y in zip(a, b) if int(x) != int(y))


class DecodeStatus(enum.Enum):
    """Outcome of decoding a received codeword or stream signature."""

    #: The received word matches a valid codeword; no error observed.
    NO_ERROR = "no_error"
    #: An error was observed and corrected; the returned data is repaired.
    CORRECTED = "corrected"
    #: An error was observed but cannot be corrected by this code.
    DETECTED = "detected"


@dataclass(frozen=True)
class DecodeResult:
    """Result of decoding one received block (or verifying one stream).

    Attributes
    ----------
    status:
        Whether the block was clean, corrected or only detected-bad.
    data:
        The decoded data bits (post-correction when applicable).  For
        detection-only codes this echoes the received data bits.
    corrected_positions:
        Indices *within the codeword* (0-based, data+parity layout as
        produced by :meth:`BlockCode.encode`) whose bits were flipped by
        the decoder.
    syndrome:
        The raw syndrome value computed by the decoder (0 means clean).
        Semantics are code specific but 0 always means "no error seen".
    """

    status: DecodeStatus
    data: Bits
    corrected_positions: Tuple[int, ...] = field(default_factory=tuple)
    syndrome: int = 0

    @property
    def is_clean(self) -> bool:
        """True when no error was observed at all."""
        return self.status is DecodeStatus.NO_ERROR

    @property
    def error_observed(self) -> bool:
        """True when the decoder saw *any* mismatch (corrected or not)."""
        return self.status is not DecodeStatus.NO_ERROR


class BlockCode(ABC):
    """A systematic block code over ``k`` data bits and ``n`` code bits.

    Subclasses must produce *systematic* codewords: the first ``k`` bits
    of :meth:`encode`'s output are the data bits unchanged, followed by
    ``n - k`` parity bits.  This mirrors the hardware organisation of
    the paper's state monitoring block, where the scan data itself stays
    in the scan chains and only the parity bits are stored in the
    monitoring block's registers.
    """

    #: Codeword length in bits.
    n: int
    #: Number of data (information) bits per codeword.
    k: int

    @property
    def r(self) -> int:
        """Number of parity (redundancy) bits per codeword."""
        return self.n - self.k

    @property
    def redundancy(self) -> float:
        """Parity-to-information ratio ``(n - k) / k`` (paper Section V)."""
        return (self.n - self.k) / self.k

    @property
    def correction_capability(self) -> float:
        """Fraction of bits per codeword that can be corrected.

        For a single-error-correcting code this is ``1 / n`` -- the
        quantity reported in the last column of the paper's Table III
        (14.3 % for Hamming(7,4) down to 1.59 % for Hamming(63,57)).
        Detection-only codes return 0.
        """
        return (1.0 / self.n) if self.correctable_errors > 0 else 0.0

    #: Number of errors per codeword the code can correct (0 or 1 here).
    correctable_errors: int = 0

    @abstractmethod
    def encode(self, data: Iterable[int]) -> Bits:
        """Encode ``k`` data bits into an ``n``-bit systematic codeword."""

    @abstractmethod
    def decode(self, codeword: Iterable[int]) -> DecodeResult:
        """Decode an ``n``-bit received word, correcting if possible."""

    def parity_bits(self, data: Iterable[int]) -> Bits:
        """Return only the ``n - k`` parity bits for ``data``."""
        return self.encode(data)[self.k:]

    def check(self, data: Iterable[int], parity: Iterable[int]) -> DecodeResult:
        """Decode from separately supplied data and parity bits.

        This matches the monitoring-block datapath: the (possibly
        corrupted) data bits arrive from the scan chains while the
        parity bits are read from the monitor's own storage.
        """
        data_t = as_bits(data)
        parity_t = as_bits(parity)
        if len(data_t) != self.k:
            raise CodeError(
                f"expected {self.k} data bits, got {len(data_t)}")
        if len(parity_t) != self.r:
            raise CodeError(
                f"expected {self.r} parity bits, got {len(parity_t)}")
        return self.decode(data_t + parity_t)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n}, k={self.k})"


class StreamCode(ABC):
    """A code that produces a fixed-width signature over a bit stream.

    Stream codes are detection-only: the signature localises no error,
    it merely indicates whether the stream changed between encoding
    (before sleep) and decoding (after wake-up).
    """

    #: Width of the stored signature in bits.
    signature_bits: int

    correctable_errors: int = 0

    @property
    def correction_capability(self) -> float:
        """Stream codes correct nothing; present for interface parity."""
        return 0.0

    @abstractmethod
    def signature(self, stream: Iterable[int]) -> Bits:
        """Compute the signature of a complete bit stream."""

    def verify(self, stream: Iterable[int], stored: Iterable[int]) -> DecodeResult:
        """Compare the stream's signature against a stored signature."""
        stream_t = as_bits(stream)
        stored_t = as_bits(stored)
        if len(stored_t) != self.signature_bits:
            raise CodeError(
                f"expected a {self.signature_bits}-bit signature, "
                f"got {len(stored_t)} bits")
        fresh = self.signature(stream_t)
        if fresh == stored_t:
            return DecodeResult(status=DecodeStatus.NO_ERROR, data=stream_t)
        syndrome = bits_to_int(fresh) ^ bits_to_int(stored_t)
        return DecodeResult(
            status=DecodeStatus.DETECTED, data=stream_t, syndrome=syndrome)

    def new_state(self) -> "StreamState":
        """Create a fresh bit-serial signature accumulator."""
        return StreamState(self)

    def _initial_register(self) -> int:
        """Initial value of the serial signature register (default 0)."""
        return 0

    def _step(self, register: int, bit: int) -> int:
        """Advance the serial signature register by one input bit.

        The default implementation recomputes via :meth:`signature`,
        which is correct but slow; concrete codes override this with the
        true shift-register update.
        """
        raise NotImplementedError

    def _finalise(self, register: int) -> Bits:
        """Convert the final register value into the signature bits."""
        return int_to_bits(register, self.signature_bits)


class StreamState:
    """Bit-serial accumulator mirroring the hardware signature register.

    The state monitoring block sees one bit per scan chain per clock
    cycle; this object lets the monitor feed bits as they arrive instead
    of buffering the whole stream.
    """

    def __init__(self, code: StreamCode):
        self._code = code
        self._register = code._initial_register()
        self._count = 0

    @property
    def bits_consumed(self) -> int:
        """Number of stream bits absorbed so far."""
        return self._count

    def shift(self, bit: int) -> None:
        """Absorb one stream bit."""
        v = int(bit)
        if v not in (0, 1):
            raise CodeError(f"bit values must be 0 or 1, got {bit!r}")
        self._register = self._code._step(self._register, v)
        self._count += 1

    def shift_many(self, bits: Iterable[int]) -> None:
        """Absorb a sequence of stream bits in order."""
        for bit in bits:
            self.shift(bit)

    def signature(self) -> Bits:
        """Return the signature of everything absorbed so far."""
        return self._code._finalise(self._register)


__all__ = [
    "Bits",
    "CodeError",
    "as_bits",
    "bits_to_int",
    "int_to_bits",
    "hamming_distance",
    "DecodeStatus",
    "DecodeResult",
    "BlockCode",
    "StreamCode",
    "StreamState",
]
