"""Bit-plane (batch-parallel) implementations of the monitoring codes.

The packed codes in :mod:`repro.codes.packed` collapse the *bit* axis:
one scan slice becomes one integer and a whole test sequence is a
handful of integer operations.  This module collapses the *sequence*
axis instead: bit ``b`` of a **plane** integer is the value of one wire
for test sequence ``b`` of a batch, so a single bitwise operation
advances every sequence of the batch at once.

All codes here are linear over GF(2), which is exactly what makes the
transposition work: a parity bit is an XOR of data bits, so the parity
*plane* is the XOR of the data *planes* -- one expression computes the
parity bit of ``B`` independent sequences.

Conventions shared with :mod:`repro.fastpath` and
:mod:`repro.engines.bitplane`:

* a *plane* is a Python int whose bit ``b`` belongs to batch sequence
  ``b``; ``full`` is the all-sequences mask ``(1 << B) - 1``;
* a ``k``-bit data word is a list of ``k`` planes ordered MSB first
  (``data_planes[i]`` is data bit ``i``, i.e. bit ``k - 1 - i`` of the
  packed integer form);
* parity words are ``r`` planes ordered MSB first the same way.

Each plane code wraps the corresponding packed code
(:func:`repro.codes.packed.packed_block_code` /
:func:`~repro.codes.packed.packed_stream_code`); the packed scalar
decoder remains the per-sequence authority, which is how the batched
engine stays bit-exact: planes locate *which* sequences disagree, the
packed decoder then rules on each disagreeing sequence individually.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.codes.base import BlockCode, CodeError, StreamCode
from repro.codes.crc import CRCCode
from repro.codes.hamming import HammingCode
from repro.codes.packed import PackedCRC, packed_block_code, packed_stream_code
from repro.codes.parity import ParityCode
from repro.codes.secded import SECDEDCode


@dataclass(frozen=True)
class GF2Matrix:
    """An affine GF(2) map in XOR-row form, shared by the batch engines.

    Output bit ``j`` is ``const[j] XOR (XOR of input bits rows[j])``.
    The representation is deliberately numpy-free (index tuples and
    0/1 constants) so the pure-Python bit-plane engine and the
    numpy-based SIMD engine consume the *same* matrices: the bit-plane
    engine evaluates a row as a chain of plane XORs, the SIMD engine as
    an XOR-fold over an ndarray gather.  Row/plane order is MSB first,
    matching the packed codes' word layouts.
    """

    rows: Tuple[Tuple[int, ...], ...]
    const: Tuple[int, ...]
    num_inputs: int

    def __post_init__(self) -> None:
        if len(self.rows) != len(self.const):
            raise CodeError("rows and const must have matching lengths")
        for row in self.rows:
            for index in row:
                if not 0 <= index < self.num_inputs:
                    raise CodeError(
                        f"row index {index} outside the "
                        f"{self.num_inputs}-bit input word")

    @property
    def num_outputs(self) -> int:
        return len(self.rows)

    def column_responses(self) -> Tuple[int, ...]:
        """Per-input response columns of the map's linear part.

        Entry ``i`` is an integer whose bit ``j`` is set when input
        bit ``i`` participates in output row ``j``: toggling input
        ``i`` toggles exactly the output bits of
        ``column_responses()[i]``.  This is the superposition form of
        the matrix -- the output delta of any input delta is the XOR
        of the flipped inputs' columns (the affine ``const`` part
        cancels in every fresh-versus-stored comparison), which is
        what the sparse-delta summary path
        (:mod:`repro.engines.delta`) gathers instead of re-folding
        whole words.  numpy-free like the matrix itself; the delta
        module caches the ndarray form per code parameters.
        """
        columns = [0] * self.num_inputs
        for j, row in enumerate(self.rows):
            bit = 1 << j
            for index in row:
                columns[index] |= bit
        return tuple(columns)


#: Shared matrices memoised on the code *parameters*: campaign workers
#: rebuild ``ProtectedDesign`` (and with it every engine) per chunk,
#: and without the cache each rebuild re-derives the same matrices --
#: the CRC stream matrix in particular costs O(stream bits) serial
#: steps.  :class:`GF2Matrix` is frozen, so sharing one instance across
#: designs/engines/processes is safe.  Only the exact built-in code
#: types are cached (a subclass may override the defining equations);
#: keys carry the type object itself, so two same-parameter instances
#: of one type share and distinct types never collide.
_MATRIX_CACHE: Dict[tuple, GF2Matrix] = {}


def _block_matrix_key(code: BlockCode) -> Optional[tuple]:
    if type(code) in (HammingCode, SECDEDCode):
        return (type(code), code.n, code.k)
    if type(code) is ParityCode:
        return (type(code), code.k, code.odd)
    return None


def block_parity_matrix(code: BlockCode) -> GF2Matrix:
    """The ``r x k`` GF(2) parity matrix of a structured block code.

    Row ``j`` lists the systematic data-bit indices XORed into parity
    bit ``j`` (parity word MSB first, the layout of
    :mod:`repro.codes.packed`).  For SECDED the last row is the
    *expanded* overall-parity row: the overall bit covers the data bits
    and the base parity bits, so substituting the base equations leaves
    a plain XOR over the data bits whose total fan-in count is odd.
    Raises :class:`CodeError` for codes without a structured matrix
    form (e.g. interleaved wrappers) -- those run through the adapter
    plane classes instead.

    Matrices for the built-in code types are memoised on the code
    parameters, so rebuilding a design (as sharded campaign workers do
    per chunk) reuses the shared instance instead of re-deriving it.
    """
    key = _block_matrix_key(code)
    if key is not None:
        cached = _MATRIX_CACHE.get(key)
        if cached is not None:
            return cached
    matrix = _build_block_parity_matrix(code)
    if key is not None:
        _MATRIX_CACHE[key] = matrix
    return matrix


def _build_block_parity_matrix(code: BlockCode) -> GF2Matrix:
    if isinstance(code, SECDEDCode):
        base_rows = [tuple(eq) for eq in code.parity_equations()]
        counts = [1] * code.k  # the overall bit covers every data bit once
        for row in base_rows:
            for index in row:
                counts[index] += 1
        overall = tuple(i for i, count in enumerate(counts) if count & 1)
        rows = tuple(base_rows) + (overall,)
        return GF2Matrix(rows=rows, const=(0,) * len(rows),
                         num_inputs=code.k)
    if type(code) is HammingCode:
        rows = tuple(tuple(eq) for eq in code.parity_equations())
        return GF2Matrix(rows=rows, const=(0,) * len(rows),
                         num_inputs=code.k)
    if isinstance(code, ParityCode):
        return GF2Matrix(rows=(tuple(range(code.k)),),
                         const=(1 if code.odd else 0,),
                         num_inputs=code.k)
    raise CodeError(
        f"{type(code).__name__} has no structured GF(2) parity matrix; "
        f"use the plane/packed adapter classes instead")


def crc_stream_matrix(code: CRCCode, nbits: int) -> GF2Matrix:
    """The affine GF(2) map from an ``nbits`` stream to a CRC signature.

    Stream bits are indexed MSB first in time (index 0 is the first bit
    folded); signature rows are MSB first (row ``j`` is signature bit
    ``width - 1 - j``), matching ``PackedCRC.signature_int``.  The CRC
    update is linear over GF(2) in (register, input), so the whole-
    stream signature is ``sig(init, 0...0) XOR (XOR of the columns of
    the positions holding a 1)``; the columns are built incrementally
    (a 1 at position ``t`` is a unit impulse followed by
    ``nbits - 1 - t`` zero steps), costing O(nbits) serial steps total.

    Memoised on ``(width, poly, init, nbits)`` for plain
    :class:`CRCCode` instances -- the O(nbits) construction is the
    dominant per-chunk engine-build cost of sharded campaigns.
    """
    if nbits < 0:
        raise CodeError("stream length must be non-negative")
    key = None
    if type(code) is CRCCode:
        key = (CRCCode, code.width, code.poly, code.init, nbits)
        cached = _MATRIX_CACHE.get(key)
        if cached is not None:
            return cached
    matrix = _build_crc_stream_matrix(code, nbits)
    if key is not None:
        _MATRIX_CACHE[key] = matrix
    return matrix


def _build_crc_stream_matrix(code: CRCCode, nbits: int) -> GF2Matrix:
    packed = PackedCRC(code)
    width = code.width
    columns = [0] * nbits
    impulse = packed._step(0, 1)
    for position in range(nbits - 1, -1, -1):
        columns[position] = impulse
        impulse = packed._step(impulse, 0)
    const_word = packed.signature_int(0, nbits)
    rows = []
    const = []
    for j in range(width):
        bit = 1 << (width - 1 - j)
        rows.append(tuple(t for t in range(nbits) if columns[t] & bit))
        const.append(1 if const_word & bit else 0)
    return GF2Matrix(rows=tuple(rows), const=tuple(const),
                     num_inputs=max(nbits, 1))


def extract_word(planes: Sequence[int], sequence: int) -> int:
    """Collapse one sequence's bits out of an MSB-first plane list.

    ``planes[i]`` holds bit ``i`` of the word (MSB first), so the
    returned integer matches the packed codes' word layout.
    """
    word = 0
    for plane in planes:
        word = (word << 1) | ((plane >> sequence) & 1)
    return word


class PlaneHamming:
    """Batch-parallel Hamming parity over bit planes.

    Parity bit ``j`` is the XOR of the data bits listed in row ``j`` of
    the shared :func:`block_parity_matrix`; in plane space that is the
    XOR of the corresponding data planes (plus ``full`` for rows with a
    constant 1, e.g. odd parity).
    """

    def __init__(self, code: HammingCode):
        self.code = code
        self.packed = packed_block_code(code)
        self.k = code.k
        self.r = code.r
        self.matrix = block_parity_matrix(code)

    def parity_planes(self, data_planes: Sequence[int],
                      full: int) -> List[int]:
        """The ``r`` parity planes (MSB first) of a batch of data words."""
        out = []
        for row, const in zip(self.matrix.rows, self.matrix.const):
            plane = full if const else 0
            for index in row:
                plane ^= data_planes[index]
            out.append(plane)
        return out


class PlaneSECDED(PlaneHamming):
    """Batch-parallel extended-Hamming (SECDED) parity.

    The parity word is the base Hamming parities followed by the
    overall parity bit, matching
    :meth:`repro.codes.packed.PackedSECDED.parity`: the overall bit
    covers the data bits *and* the base parity bits.
    :func:`block_parity_matrix` returns the overall row in expanded
    (data-bits-only) form, so the inherited row evaluation already
    computes it -- nothing to override.
    """


class PlaneParity(PlaneHamming):
    """Batch-parallel single-parity-bit computation.

    The matrix has one row covering every data bit, with a constant 1
    for odd parity; the inherited row evaluation covers it.
    """

    def __init__(self, code: ParityCode):
        self.code = code
        self.packed = packed_block_code(code)
        self.k = code.k
        self.r = 1
        self.matrix = block_parity_matrix(code)


class PlaneBlockAdapter:
    """Plane facade over an arbitrary reference :class:`BlockCode`.

    Transposes each sequence's word out of the planes and runs the
    packed code on it, so correctness holds for any code (interleaved
    wrappers, user-defined codes) at the cost of per-sequence work.
    The structured codes above are the fast path.
    """

    def __init__(self, code: BlockCode):
        self.code = code
        self.packed = packed_block_code(code)
        self.k = code.k
        self.r = code.r

    def parity_planes(self, data_planes: Sequence[int],
                      full: int) -> List[int]:
        out = [0] * self.r
        remaining = full
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            sequence = low.bit_length() - 1
            parity = self.packed.parity(extract_word(data_planes, sequence))
            for j in range(self.r):
                if (parity >> (self.r - 1 - j)) & 1:
                    out[j] |= low
        return out


class PlaneCRCState:
    """The batch's CRC registers as ``width`` planes (circular buffer).

    ``bit(p)`` is the plane of register bit ``p`` (``p = width - 1`` is
    the MSB).  The shift of every sequence's register is realised by
    moving the buffer's base pointer instead of moving ``width`` planes,
    so one input plane costs O(taps) plane operations for the whole
    batch.
    """

    __slots__ = ("_planes", "_base", "_width")

    def __init__(self, width: int, init: int, full: int):
        self._width = width
        self._base = 0
        self._planes = [full if (init >> p) & 1 else 0
                        for p in range(width)]

    def bit(self, position: int) -> int:
        """Plane of register bit ``position``."""
        return self._planes[(self._base + position) % self._width]

    def signature_planes(self) -> List[int]:
        """Register planes in MSB-first order (signature bit layout)."""
        return [self.bit(p) for p in range(self._width - 1, -1, -1)]

    def extract(self, sequence: int) -> int:
        """One sequence's register value (for cross-checks and tests)."""
        value = 0
        for p in range(self._width - 1, -1, -1):
            value = (value << 1) | ((self.bit(p) >> sequence) & 1)
        return value

    def snapshot(self) -> List[int]:
        """Stored-signature form consumed by :meth:`mismatch_mask`."""
        return self.signature_planes()

    def mismatch_mask(self, stored: Sequence[int]) -> int:
        """Plane of sequences whose signature differs from ``stored``."""
        mask = 0
        for fresh, old in zip(self.signature_planes(), stored):
            mask |= fresh ^ old
        return mask


class PlaneCRC:
    """Batch-parallel CRC over bit planes.

    One :meth:`step` folds one stream *plane* (one stream bit of every
    sequence) into the batch's registers, mirroring
    :meth:`repro.codes.crc.CRCCode._step` per sequence:

    ``feedback = register[msb] ^ input; register <<= 1;
    if feedback: register ^= poly``

    The feedback branch is data-dependent per sequence, but since XOR
    with ``poly`` is linear the plane form is branch-free: every tap
    plane absorbs ``feedback_plane``.
    """

    def __init__(self, code: CRCCode):
        self.code = code
        self.packed = packed_stream_code(code)
        self.width = code.width
        self.poly = code.poly
        self.init = code.init
        self._taps = tuple(p for p in range(code.width)
                           if (code.poly >> p) & 1)

    def new_state(self, full: int) -> PlaneCRCState:
        return PlaneCRCState(self.width, self.init, full)

    def step(self, state: PlaneCRCState, in_plane: int) -> None:
        width = state._width
        feedback = state.bit(width - 1) ^ in_plane
        # Shift left: new bit p is old bit p - 1; the freed bit-0 slot
        # is the old MSB slot, cleared before the taps absorb feedback.
        state._base = (state._base - 1) % width
        state._planes[state._base] = 0
        if feedback:
            planes = state._planes
            base = state._base
            for p in self._taps:
                planes[(base + p) % width] ^= feedback


class PlaneStreamAdapter:
    """Plane facade over an arbitrary :class:`StreamCode`.

    Keeps one scalar register per sequence and steps each of them per
    input plane -- correct for any stream code, with no batch speedup.
    Registered CRCs use :class:`PlaneCRC` instead.
    """

    class State:
        __slots__ = ("registers",)

        def __init__(self, registers: List[int]):
            self.registers = registers

        def extract(self, sequence: int) -> int:
            return self.registers[sequence]

        def snapshot(self) -> List[int]:
            return list(self.registers)

        def mismatch_mask(self, stored: Sequence[int]) -> int:
            mask = 0
            for b, (fresh, old) in enumerate(zip(self.registers, stored)):
                if fresh != old:
                    mask |= 1 << b
            return mask

    def __init__(self, code: StreamCode):
        self.code = code
        self.packed = packed_stream_code(code)
        self.width = code.signature_bits

    def new_state(self, full: int) -> "PlaneStreamAdapter.State":
        init = self.code._initial_register()
        return self.State([init] * full.bit_length())

    def step(self, state: "PlaneStreamAdapter.State", in_plane: int) -> None:
        step = self.code._step
        registers = state.registers
        for b in range(len(registers)):
            registers[b] = step(registers[b], (in_plane >> b) & 1)


def plane_block_code(code: BlockCode):
    """Fastest plane implementation for a reference block code."""
    if type(code) is HammingCode:
        return PlaneHamming(code)
    if isinstance(code, SECDEDCode):
        return PlaneSECDED(code)
    if isinstance(code, ParityCode):
        return PlaneParity(code)
    return PlaneBlockAdapter(code)


def plane_stream_code(code: StreamCode):
    """Fastest plane implementation for a reference stream code."""
    if isinstance(code, CRCCode):
        return PlaneCRC(code)
    return PlaneStreamAdapter(code)


__all__ = [
    "GF2Matrix",
    "block_parity_matrix",
    "crc_stream_matrix",
    "PlaneHamming",
    "PlaneSECDED",
    "PlaneParity",
    "PlaneBlockAdapter",
    "PlaneCRC",
    "PlaneCRCState",
    "PlaneStreamAdapter",
    "plane_block_code",
    "plane_stream_code",
    "extract_word",
]
