"""Interleaved block codes for burst-error tolerance.

The paper's multi-error experiment shows that clustered (burst) errors
defeat plain Hamming correction because several errors land in the same
codeword.  Interleaving --- distributing physically adjacent bits across
different codewords --- is the standard countermeasure and is listed in
DESIGN.md as an ablation of the paper's design choices.

:class:`InterleavedCode` wraps any :class:`~repro.codes.base.BlockCode`
with depth ``d``: a frame of ``d * k`` data bits is split column-wise so
that bits ``i, i + d, i + 2d, ...`` form codeword ``i``.  A burst of up
to ``d`` adjacent bit errors then touches each codeword at most once and
remains correctable by a single-error-correcting inner code.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.codes.base import (
    Bits,
    BlockCode,
    CodeError,
    DecodeResult,
    DecodeStatus,
    as_bits,
)


class InterleavedCode(BlockCode):
    """Depth-``d`` bit interleaver around an inner block code.

    Parameters
    ----------
    inner:
        The inner block code (e.g. ``HammingCode(7, 4)``).
    depth:
        Interleaving depth ``d`` (number of inner codewords per frame).
    """

    def __init__(self, inner: BlockCode, depth: int):
        if depth <= 0:
            raise CodeError("interleaving depth must be positive")
        self.inner = inner
        self.depth = depth
        self.k = inner.k * depth
        self.n = inner.n * depth

    @property
    def correctable_errors(self) -> int:  # type: ignore[override]
        """Total correctable errors per frame (one per inner codeword)."""
        return self.inner.correctable_errors * self.depth

    @property
    def burst_tolerance(self) -> int:
        """Maximum length of a contiguous burst that is always corrected."""
        return self.depth * self.inner.correctable_errors

    @property
    def name(self) -> str:
        """Canonical name, e.g. ``"interleaved(hamming(7,4),x4)"``."""
        inner_name = getattr(self.inner, "name", repr(self.inner))
        return f"interleaved({inner_name},x{self.depth})"

    # ------------------------------------------------------------------
    def _split_data(self, data: Bits) -> List[Bits]:
        """Column-wise de-interleave of a frame into inner data blocks."""
        return [tuple(data[i::self.depth]) for i in range(self.depth)]

    def _merge_data(self, blocks: List[Tuple[int, ...]]) -> Bits:
        """Column-wise re-interleave of inner data blocks into a frame."""
        merged = [0] * self.k
        for i, block in enumerate(blocks):
            for j, bit in enumerate(block):
                merged[i + j * self.depth] = bit
        return tuple(merged)

    def encode(self, data: Iterable[int]) -> Bits:
        """Encode a frame of ``depth * inner.k`` data bits."""
        data_t = as_bits(data)
        if len(data_t) != self.k:
            raise CodeError(
                f"expected {self.k} data bits, got {len(data_t)}")
        blocks = self._split_data(data_t)
        codewords = [self.inner.encode(block) for block in blocks]
        # Systematic frame: interleaved data first, then the parity bits
        # of each inner codeword concatenated in order.
        parity = tuple(
            bit for cw in codewords for bit in cw[self.inner.k:])
        return data_t + parity

    def decode(self, codeword: Iterable[int]) -> DecodeResult:
        """Decode a frame; each inner codeword is decoded independently."""
        cw = as_bits(codeword)
        if len(cw) != self.n:
            raise CodeError(
                f"expected {self.n} codeword bits, got {len(cw)}")
        data, parity = cw[:self.k], cw[self.k:]
        blocks = self._split_data(data)
        r = self.inner.n - self.inner.k
        statuses = []
        corrected_positions: List[int] = []
        decoded_blocks: List[Tuple[int, ...]] = []
        for i, block in enumerate(blocks):
            inner_cw = block + tuple(parity[i * r:(i + 1) * r])
            result = self.inner.decode(inner_cw)
            decoded_blocks.append(result.data)
            statuses.append(result.status)
            for pos in result.corrected_positions:
                if pos < self.inner.k:
                    corrected_positions.append(i + pos * self.depth)
                else:
                    corrected_positions.append(
                        self.k + i * r + (pos - self.inner.k))
        merged = self._merge_data(decoded_blocks)
        if any(s is DecodeStatus.DETECTED for s in statuses):
            status = DecodeStatus.DETECTED
        elif any(s is DecodeStatus.CORRECTED for s in statuses):
            status = DecodeStatus.CORRECTED
        else:
            status = DecodeStatus.NO_ERROR
        return DecodeResult(
            status=status,
            data=merged,
            corrected_positions=tuple(sorted(corrected_positions)),
            syndrome=sum(1 for s in statuses if s is not DecodeStatus.NO_ERROR))


__all__ = ["InterleavedCode"]
