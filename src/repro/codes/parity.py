"""Single-parity-bit detection code.

Not evaluated in the paper's tables, but included as the simplest member
of the detection-only design space: a single even-parity bit per data
block detects any odd number of errors at negligible area cost.  It is
used in the ablation benchmarks as the lower anchor of the
area-versus-capability trade-off.
"""

from __future__ import annotations

from typing import Iterable

from repro.codes.base import (
    Bits,
    BlockCode,
    CodeError,
    DecodeResult,
    DecodeStatus,
    as_bits,
)


class ParityCode(BlockCode):
    """Even (or odd) parity over ``k`` data bits.

    Parameters
    ----------
    k:
        Number of data bits per block.
    odd:
        When True, odd parity is used (the parity bit makes the total
        number of ones odd).  Default is even parity.
    """

    correctable_errors = 0

    def __init__(self, k: int = 8, odd: bool = False):
        if k <= 0:
            raise CodeError("parity block size must be positive")
        self.k = k
        self.n = k + 1
        self.odd = odd

    def _parity_of(self, data: Bits) -> int:
        p = 0
        for bit in data:
            p ^= bit
        return p ^ 1 if self.odd else p

    def encode(self, data: Iterable[int]) -> Bits:
        """Append the parity bit to ``k`` data bits."""
        data_t = as_bits(data)
        if len(data_t) != self.k:
            raise CodeError(
                f"expected {self.k} data bits, got {len(data_t)}")
        return data_t + (self._parity_of(data_t),)

    def decode(self, codeword: Iterable[int]) -> DecodeResult:
        """Verify the parity bit; any odd-weight error is detected."""
        cw = as_bits(codeword)
        if len(cw) != self.n:
            raise CodeError(
                f"expected {self.n} codeword bits, got {len(cw)}")
        data, parity = cw[:self.k], cw[self.k]
        expected = self._parity_of(data)
        if parity == expected:
            return DecodeResult(status=DecodeStatus.NO_ERROR, data=data)
        return DecodeResult(
            status=DecodeStatus.DETECTED, data=data, syndrome=1)

    @property
    def name(self) -> str:
        """Canonical name, e.g. ``"parity(8)"``."""
        kind = "odd" if self.odd else "even"
        return f"parity({self.k},{kind})"

    def encoder_xor_count(self) -> int:
        """XOR gates in a parity tree over ``k`` inputs."""
        return max(self.k - 1, 0) + (1 if self.odd else 0)


__all__ = ["ParityCode"]
