"""Extended Hamming (SECDED) codes.

The paper's Hamming monitors mis-correct double errors (which is why the
multi-error FPGA experiment reports 0 % correction while CRC-16 detects
everything).  A natural extension --- mentioned here as the standard
memory-industry practice --- is the *extended* Hamming code with one
additional overall parity bit, giving Single Error Correction / Double
Error Detection (SECDED).  It is implemented as an optional upgrade of
the monitoring block and ablated in the benchmark suite.
"""

from __future__ import annotations

from typing import Iterable

from repro.codes.base import (
    Bits,
    CodeError,
    DecodeResult,
    DecodeStatus,
    as_bits,
)
from repro.codes.hamming import HammingCode


class SECDEDCode(HammingCode):
    """Extended Hamming code: Hamming(n, k) plus one overall parity bit.

    The codeword layout is systematic: ``k`` data bits, then the ``r``
    Hamming parity bits, then the overall parity bit, for a total of
    ``n + 1`` bits.

    Decoding distinguishes three cases:

    * syndrome 0, overall parity OK           -> no error
    * syndrome != 0, overall parity mismatch  -> single error, corrected
    * syndrome != 0, overall parity OK        -> double error, detected
    * syndrome 0, overall parity mismatch     -> error in the overall
      parity bit itself, corrected
    """

    correctable_errors = 1

    def __init__(self, n: int = 7, k: int = 4):
        super().__init__(n, k)
        self._base_n = n
        # Publish the extended length; keep k unchanged.
        self.n = n + 1

    @property
    def name(self) -> str:
        """Canonical name, e.g. ``"secded(8,4)"``."""
        return f"secded({self.n},{self.k})"

    def encode(self, data: Iterable[int]) -> Bits:
        """Encode ``k`` data bits into the extended codeword."""
        data_t = as_bits(data)
        if len(data_t) != self.k:
            raise CodeError(
                f"expected {self.k} data bits, got {len(data_t)}")
        # Temporarily present the base-length n to the parent encoder.
        self.n = self._base_n
        try:
            base = super().encode(data_t)
        finally:
            self.n = self._base_n + 1
        overall = 0
        for bit in base:
            overall ^= bit
        return base + (overall,)

    def decode(self, codeword: Iterable[int]) -> DecodeResult:
        """Decode with double-error detection."""
        cw = as_bits(codeword)
        if len(cw) != self.n:
            raise CodeError(
                f"expected {self.n} codeword bits, got {len(cw)}")
        base, overall = cw[:-1], cw[-1]
        observed_overall = 0
        for bit in base:
            observed_overall ^= bit
        parity_mismatch = (observed_overall != overall)

        self.n = self._base_n
        try:
            syn = self.syndrome(base)
        finally:
            self.n = self._base_n + 1

        if syn == 0 and not parity_mismatch:
            return DecodeResult(
                status=DecodeStatus.NO_ERROR, data=cw[:self.k], syndrome=0)
        if syn == 0 and parity_mismatch:
            # The overall parity bit itself flipped; data is intact.
            return DecodeResult(
                status=DecodeStatus.CORRECTED, data=cw[:self.k],
                corrected_positions=(self.n - 1,), syndrome=0)
        if parity_mismatch:
            # Single error inside the base codeword: correct it.
            self.n = self._base_n
            try:
                base_result = super().decode(base)
            finally:
                self.n = self._base_n + 1
            return DecodeResult(
                status=DecodeStatus.CORRECTED,
                data=base_result.data,
                corrected_positions=base_result.corrected_positions,
                syndrome=syn)
        # Non-zero syndrome with even overall parity: double error.
        return DecodeResult(
            status=DecodeStatus.DETECTED, data=cw[:self.k], syndrome=syn)

    def encoder_xor_count(self) -> int:
        """Base Hamming encoder plus the overall-parity tree."""
        self.n = self._base_n
        try:
            base = super().encoder_xor_count()
        finally:
            self.n = self._base_n + 1
        return base + (self._base_n - 1)


__all__ = ["SECDEDCode"]
