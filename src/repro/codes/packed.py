"""Packed-integer implementations of the monitoring codes.

The reference codes in this package operate on tuples of bits, one
Python object per bit -- faithful to the hardware and easy to audit,
but costly inside the Monte-Carlo hot loops.  This module provides
packed equivalents that operate on plain integers:

* :class:`PackedCRC` -- table-driven byte-wise CRC update (a
  precomputed 256-entry table per polynomial), bit-exact against
  :meth:`repro.codes.crc.CRCCode.signature_int`;
* :class:`PackedHamming` -- mask-based Hamming encode/decode:
  precomputed parity masks, syndrome via popcount, and a
  syndrome-to-position lookup table;
* :class:`PackedSECDED`, :class:`PackedParity` -- the same treatment
  for the extended-Hamming and single-parity codes;
* :class:`PackedBlockAdapter`, :class:`PackedStreamAdapter` -- generic
  fallbacks that wrap any reference code (e.g.
  :class:`~repro.codes.interleave.InterleavedCode`), converting between
  integers and bit tuples at the boundary so the packed engine never
  needs a special case.

Bit conventions (shared with :mod:`repro.fastpath`):

* streams and data words are packed MSB first, matching
  :func:`repro.codes.base.bits_to_int`: data bit ``i`` of a ``k``-bit
  slice is bit ``k - 1 - i`` of the integer, parity bit ``j`` of an
  ``r``-bit parity word is bit ``r - 1 - j``.

Use :func:`packed_block_code` / :func:`packed_stream_code` to pick the
fastest packed implementation for a given reference code.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.codes.base import (
    BlockCode,
    CodeError,
    DecodeStatus,
    StreamCode,
    bits_to_int,
    int_to_bits,
)
from repro.codes.crc import CRCCode
from repro.codes.hamming import HammingCode
from repro.codes.parity import ParityCode
from repro.codes.secded import SECDEDCode

#: Result statuses shared with :class:`repro.codes.base.DecodeStatus`;
#: re-exported so engine code can match on them without tuple building.
NO_ERROR = DecodeStatus.NO_ERROR
CORRECTED = DecodeStatus.CORRECTED
DETECTED = DecodeStatus.DETECTED


class PackedCRC:
    """Byte-wise table-driven CRC over packed bit streams.

    Parameters
    ----------
    code:
        The reference :class:`~repro.codes.crc.CRCCode` whose
        polynomial, width and initial value are mirrored.

    The update rule is the classic MSB-first table CRC: 8 stream bits
    are folded per table lookup.  Widths below 8 fall back to the
    bit-serial update (none of the registered polynomials need it).
    """

    def __init__(self, code: CRCCode):
        self.code = code
        self.width = code.width
        self.poly = code.poly
        self.init = code.init
        self._mask = (1 << code.width) - 1
        self._table: Optional[List[int]] = None
        if code.width >= 8:
            self._table = [self._fold_top_byte(byte << (code.width - 8))
                           for byte in range(256)]

    def _fold_top_byte(self, register: int) -> int:
        """Eight zero-input serial steps of ``register`` (table builder)."""
        for _ in range(8):
            msb = (register >> (self.width - 1)) & 1
            register = (register << 1) & self._mask
            if msb:
                register ^= self.poly
        return register

    def _step(self, register: int, bit: int) -> int:
        """One bit-serial update, identical to ``CRCCode._step``."""
        feedback = ((register >> (self.width - 1)) & 1) ^ bit
        register = (register << 1) & self._mask
        if feedback:
            register ^= self.poly
        return register

    def fold(self, register: int, stream: int, nbits: int) -> int:
        """Fold an ``nbits``-long MSB-first stream into the register."""
        if nbits < 0:
            raise CodeError("stream length must be non-negative")
        if not (0 <= stream < (1 << nbits) if nbits else stream == 0):
            raise CodeError(f"stream does not fit in {nbits} bits")
        table = self._table
        if table is None:
            for i in range(nbits - 1, -1, -1):
                register = self._step(register, (stream >> i) & 1)
            return register
        # Leading bits (first in time, at the top of the int) that do
        # not fill a byte are folded serially; the rest byte-wise.
        head = nbits % 8
        pos = nbits - head
        for i in range(nbits - 1, pos - 1, -1):
            register = self._step(register, (stream >> i) & 1)
        width = self.width
        mask = self._mask
        while pos:
            pos -= 8
            byte = (stream >> pos) & 0xFF
            idx = ((register >> (width - 8)) ^ byte) & 0xFF
            register = ((register << 8) & mask) ^ table[idx]
        return register

    def signature_int(self, stream: int, nbits: int) -> int:
        """Whole-stream signature, equal to ``CRCCode.signature_int``."""
        return self.fold(self.init, stream, nbits)


class PackedHamming:
    """Mask-based Hamming(n, k) encode/decode over packed data words.

    Parameters
    ----------
    code:
        The reference :class:`~repro.codes.hamming.HammingCode`.  The
        exact type is required -- subclasses with different codeword
        layouts (SECDED) have their own packed implementation.

    Parity bit ``j`` is the popcount parity of ``data & mask_j`` for a
    precomputed mask; the syndrome is the XOR of recomputed and stored
    parity bits, and a ``2**r``-entry lookup table maps it straight to
    the systematic codeword position to flip.
    """

    def __init__(self, code: HammingCode):
        if type(code) is not HammingCode:
            raise CodeError(
                f"PackedHamming requires a plain HammingCode, got "
                f"{type(code).__name__}; use packed_block_code()")
        self.code = code
        self.k = code.k
        self.r = code.r
        self.n = code.n
        # mask_j over the k-bit data word (data index i -> bit k-1-i).
        self.data_masks: Tuple[int, ...] = tuple(
            sum(1 << (code.k - 1 - i) for i in equation)
            for equation in code.parity_equations())
        # Non-zero syndrome -> systematic codeword index (0..n-1).
        lut: List[Optional[int]] = [None] * (1 << self.r)
        for position in range(1, code.n + 1):
            lut[position] = code._position_to_systematic[position]
        self._syndrome_to_systematic = lut

    def parity(self, data: int) -> int:
        """Parity word (``r`` bits, MSB first) of a ``k``-bit data word."""
        out = 0
        r1 = self.r - 1
        for j, mask in enumerate(self.data_masks):
            if (data & mask).bit_count() & 1:
                out |= 1 << (r1 - j)
        return out

    def decode_slice(self, data: int, stored_parity: int
                     ) -> Tuple[DecodeStatus, int, Tuple[int, ...]]:
        """Decode a data word against its stored parity.

        Returns ``(status, corrected_data, corrected_positions)`` with
        positions in systematic codeword coordinates (0-based; ``>= k``
        means a parity bit), mirroring
        :meth:`repro.codes.hamming.HammingCode.decode`.
        """
        diff = self.parity(data) ^ stored_parity
        if diff == 0:
            return NO_ERROR, data, ()
        # Syndrome bit j is parity mismatch j; diff holds parity j at
        # bit r-1-j, so the syndrome is diff bit-reversed over r bits.
        syndrome = 0
        r1 = self.r - 1
        for j in range(self.r):
            if (diff >> (r1 - j)) & 1:
                syndrome |= 1 << j
        systematic = self._syndrome_to_systematic[syndrome]
        if systematic is None:  # pragma: no cover - impossible for Hamming
            return DETECTED, data, ()
        if systematic < self.k:
            return CORRECTED, data ^ (1 << (self.k - 1 - systematic)), \
                (systematic,)
        return CORRECTED, data, (systematic,)


class PackedSECDED:
    """Mask-based extended-Hamming (SECDED) encode/decode."""

    def __init__(self, code: SECDEDCode):
        self.code = code
        self.k = code.k
        self.n = code.n                  # extended length (base + 1)
        self.r = code.n - code.k         # base parity bits + overall bit
        base_r = self.r - 1
        self.data_masks: Tuple[int, ...] = tuple(
            sum(1 << (code.k - 1 - i) for i in equation)
            for equation in code.parity_equations())
        lut: List[Optional[int]] = [None] * (1 << base_r)
        for position in range(1, (code.n - 1) + 1):
            lut[position] = code._position_to_systematic[position]
        self._syndrome_to_systematic = lut
        self._base_r = base_r

    def parity(self, data: int) -> int:
        """Parity word: base Hamming parities then the overall bit."""
        base = 0
        b1 = self._base_r - 1
        for j, mask in enumerate(self.data_masks):
            if (data & mask).bit_count() & 1:
                base |= 1 << (b1 - j)
        overall = (data.bit_count() + base.bit_count()) & 1
        return (base << 1) | overall

    def decode_slice(self, data: int, stored_parity: int
                     ) -> Tuple[DecodeStatus, int, Tuple[int, ...]]:
        """Mirror of :meth:`repro.codes.secded.SECDEDCode.decode`."""
        stored_overall = stored_parity & 1
        stored_base = stored_parity >> 1
        observed_overall = (data.bit_count() + stored_base.bit_count()) & 1
        parity_mismatch = observed_overall != stored_overall
        base = 0
        b1 = self._base_r - 1
        for j, mask in enumerate(self.data_masks):
            if (data & mask).bit_count() & 1:
                base |= 1 << (b1 - j)
        diff = base ^ stored_base
        syndrome = 0
        for j in range(self._base_r):
            if (diff >> (b1 - j)) & 1:
                syndrome |= 1 << j
        if syndrome == 0 and not parity_mismatch:
            return NO_ERROR, data, ()
        if syndrome == 0:
            # The overall parity bit itself flipped; data is intact.
            return CORRECTED, data, (self.n - 1,)
        if parity_mismatch:
            systematic = self._syndrome_to_systematic[syndrome]
            if systematic is None:  # pragma: no cover - guard
                return DETECTED, data, ()
            if systematic < self.k:
                return CORRECTED, data ^ (1 << (self.k - 1 - systematic)), \
                    (systematic,)
            return CORRECTED, data, (systematic,)
        # Non-zero syndrome with matching overall parity: double error.
        return DETECTED, data, ()


class PackedParity:
    """Single-parity-bit detection over packed data words."""

    def __init__(self, code: ParityCode):
        self.code = code
        self.k = code.k
        self.r = 1
        self._odd = 1 if code.odd else 0

    def parity(self, data: int) -> int:
        return (data.bit_count() & 1) ^ self._odd

    def decode_slice(self, data: int, stored_parity: int
                     ) -> Tuple[DecodeStatus, int, Tuple[int, ...]]:
        if self.parity(data) == stored_parity:
            return NO_ERROR, data, ()
        return DETECTED, data, ()


class PackedBlockAdapter:
    """Packed facade over an arbitrary reference :class:`BlockCode`.

    Converts between integers and bit tuples at every call, so it gains
    nothing per slice -- it exists so the packed engine can run any
    code (interleaved wrappers, user-defined codes) without a special
    case while still skipping the per-flop chain simulation.
    """

    def __init__(self, code: BlockCode):
        self.code = code
        self.k = code.k
        self.r = code.r

    def parity(self, data: int) -> int:
        return bits_to_int(self.code.parity_bits(int_to_bits(data, self.k)))

    def decode_slice(self, data: int, stored_parity: int
                     ) -> Tuple[DecodeStatus, int, Tuple[int, ...]]:
        result = self.code.check(int_to_bits(data, self.k),
                                 int_to_bits(stored_parity, self.r))
        return result.status, bits_to_int(result.data), \
            result.corrected_positions


class PackedStreamAdapter:
    """Bit-serial packed facade over an arbitrary :class:`StreamCode`."""

    def __init__(self, code: StreamCode):
        self.code = code
        self.width = code.signature_bits
        self.init = code._initial_register()

    def fold(self, register: int, stream: int, nbits: int) -> int:
        step = self.code._step
        for i in range(nbits - 1, -1, -1):
            register = step(register, (stream >> i) & 1)
        return register

    def signature_int(self, stream: int, nbits: int) -> int:
        return self.fold(self.init, stream, nbits)


def packed_block_code(code: BlockCode):
    """Fastest packed implementation for a reference block code."""
    if type(code) is HammingCode:
        return PackedHamming(code)
    if isinstance(code, SECDEDCode):
        return PackedSECDED(code)
    if isinstance(code, ParityCode):
        return PackedParity(code)
    return PackedBlockAdapter(code)


def packed_stream_code(code: StreamCode):
    """Fastest packed implementation for a reference stream code."""
    if isinstance(code, CRCCode):
        return PackedCRC(code)
    return PackedStreamAdapter(code)


__all__ = [
    "PackedCRC",
    "PackedHamming",
    "PackedSECDED",
    "PackedParity",
    "PackedBlockAdapter",
    "PackedStreamAdapter",
    "packed_block_code",
    "packed_stream_code",
]
