"""Plain-text report formatting for synthesis and cost results.

These helpers render the same row layout as the paper's Tables I and II
so that benchmark output can be compared against the published tables
side by side.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.protected import CostReport

#: Column order of the paper's Tables I and II.
TABLE_COLUMNS = (
    ("W", "W"),
    ("l", "l"),
    ("area_um2", "area um2"),
    ("area_overhead_percent", "ovh %"),
    ("enc_power_mw", "enc mW"),
    ("dec_power_mw", "dec mW"),
    ("latency_ns", "t ns"),
    ("enc_energy_nj", "enc nJ"),
    ("dec_energy_nj", "dec nJ"),
)


def format_cost_table(reports: Sequence[CostReport],
                      title: str = "") -> str:
    """Format cost reports as an aligned text table (Tables I/II layout)."""
    rows: List[dict] = [report.as_table_row() for report in reports]
    headers = [header for _, header in TABLE_COLUMNS]
    widths = [len(h) for h in headers]
    formatted_rows: List[List[str]] = []
    for row in rows:
        cells = []
        for (key, _header), index in zip(TABLE_COLUMNS, range(len(headers))):
            cell = f"{row[key]}"
            widths[index] = max(widths[index], len(cell))
            cells.append(cell)
        formatted_rows.append(cells)

    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in formatted_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def format_synthesis_report(result, title: str = "synthesis result") -> str:
    """Render a :class:`~repro.flow.synthesizer.SynthesisResult` as text."""
    design = result.design
    cost = result.cost
    code_names = ", ".join(getattr(c, "name", repr(c))
                           for c in design.codes)
    lines = [
        title,
        "=" * len(title),
        f"circuit            : {design.circuit.name} "
        f"({design.circuit.num_registers} registers)",
        f"monitoring codes   : {code_names}",
        f"selected chains W  : {cost.config.num_chains}",
        f"chain length l     : {cost.config.chain_length}",
        f"monitor blocks     : {cost.config.num_monitor_blocks}",
        f"total area         : {cost.area_total_um2:.0f} um2",
        f"area overhead      : {cost.area_overhead_percent:.1f} %",
        f"encode power       : {cost.encode_cost.power_mw:.2f} mW",
        f"decode power       : {cost.decode_cost.power_mw:.2f} mW",
        f"encode latency     : {cost.latency_ns:.0f} ns",
        f"encode energy      : {cost.encode_cost.energy_nj:.2f} nJ",
        f"decode energy      : {cost.decode_cost.energy_nj:.2f} nJ",
    ]
    if len(result.explored) > 1:
        lines.append("")
        lines.append(format_cost_table(result.explored,
                                       title="explored configurations:"))
    return "\n".join(lines)


__all__ = ["format_cost_table", "format_synthesis_report", "TABLE_COLUMNS"]
