"""Scan insertion step of the synthesis flow.

The first step of the paper's flow is standard DFT scan insertion:
system flip-flops are swapped for scan flip-flops, the flops are
partitioned into chains, and scan-in / scan-out / scan-enable ports are
created without affecting functionality.  In this reproduction the
circuits are already built from (retention) scan flip-flops, so the
insertion step amounts to the partitioning/stitching plus a summary of
what a DFT tool would have reported: chain count, chain lengths,
balancing padding and the test-mode concatenation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.circuit.base import SequentialCircuit
from repro.circuit.scan import ScanChain, insert_scan_chains
from repro.core.scan_config import ScanChainConfig, TestModeMapping


@dataclass(frozen=True)
class ScanInsertionResult:
    """Report of the scan-insertion step.

    Attributes
    ----------
    chains:
        The stitched scan chains in monitoring-mode configuration.
    config:
        The scan-chain geometry.
    test_mapping:
        How the monitoring chains concatenate for manufacturing test.
    """

    chains: Tuple[ScanChain, ...]
    config: ScanChainConfig
    test_mapping: TestModeMapping

    @property
    def num_chains(self) -> int:
        """Number of monitoring-mode chains."""
        return len(self.chains)

    @property
    def chain_lengths(self) -> Tuple[int, ...]:
        """Length of every chain (balanced chains are all equal)."""
        return tuple(len(chain) for chain in self.chains)


def insert_scan(circuit: SequentialCircuit, num_chains: int,
                monitor_width: int = 4, test_width: int = 4,
                clock_period_ns: float = 10.0) -> ScanInsertionResult:
    """Partition a circuit's registers into monitoring-mode scan chains.

    This is the "scan chains insertion" box of the paper's Fig. 4; the
    returned result also carries the dual-mode configuration of Fig. 5.
    """
    chains = insert_scan_chains(circuit, num_chains)
    config = ScanChainConfig(
        num_registers=circuit.num_registers,
        num_chains=num_chains,
        monitor_width=monitor_width,
        test_width=min(test_width, num_chains),
        clock_period_ns=clock_period_ns)
    return ScanInsertionResult(
        chains=tuple(chains),
        config=config,
        test_mapping=config.test_mode_mapping())


__all__ = ["ScanInsertionResult", "insert_scan"]
