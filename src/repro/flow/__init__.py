"""Reliability-aware synthesis flow emulation (paper Fig. 4).

The paper's flow takes a conventional power-gated design, a
configuration file describing the desired quality (area / power /
latency / energy trade-off) and the templates of the state monitoring
block and the proposed power-gating controller; it then

1. inserts scan chains into the power-gated circuit,
2. generates the state monitoring and error correction logic,
3. configures the proposed power-gating controller, and
4. synthesizes the design (Synopsys DFT Compiler / Design Compiler in
   the paper; a cost-model-backed emulation here).

:class:`~repro.flow.synthesizer.ReliabilityAwareSynthesizer` performs
the same four steps over the Python circuit models and returns a
:class:`~repro.flow.synthesizer.SynthesisResult` carrying the protected
design plus its cost report.
"""

from repro.flow.config import FlowConfig, OptimizationTarget
from repro.flow.dft import ScanInsertionResult, insert_scan
from repro.flow.synthesizer import ReliabilityAwareSynthesizer, SynthesisResult
from repro.flow.report import format_cost_table, format_synthesis_report

__all__ = [
    "FlowConfig",
    "OptimizationTarget",
    "ScanInsertionResult",
    "insert_scan",
    "ReliabilityAwareSynthesizer",
    "SynthesisResult",
    "format_cost_table",
    "format_synthesis_report",
]
