"""Reliability-aware synthesizer (paper Fig. 4).

The synthesizer consumes a conventional power-gated design and a
:class:`~repro.flow.config.FlowConfig` and produces a
:class:`~repro.core.protected.ProtectedDesign` together with its cost
report.  When the configuration leaves the chain count open, the
synthesizer sweeps the candidate values and picks the one that best
matches the optimisation target, subject to the optional area/latency
caps --- this is the "quality solutions in terms of area, power, latency
and energy" knob of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.circuit.base import SequentialCircuit
from repro.core.protected import CostReport, ProtectedDesign
from repro.flow.config import FlowConfig, OptimizationTarget
from repro.power.retention import RetentionUpsetModel
from repro.power.rush_current import RLCParameters
from repro.tech.library import StandardCellLibrary


@dataclass(frozen=True)
class SynthesisResult:
    """Output of the reliability-aware synthesizer.

    Attributes
    ----------
    design:
        The protected design (circuit + monitoring + correction +
        controller) for the selected chain count.
    cost:
        Cost report of the selected configuration.
    explored:
        Cost reports of every candidate configuration that was
        evaluated (one per candidate ``W``), for reporting.
    """

    design: ProtectedDesign
    cost: CostReport
    explored: Tuple[CostReport, ...] = field(default_factory=tuple)

    @property
    def selected_chains(self) -> int:
        """The chain count the synthesizer settled on."""
        return self.cost.config.num_chains


class ReliabilityAwareSynthesizer:
    """Builds protected designs from a flow configuration.

    Parameters
    ----------
    config:
        The flow configuration (codes, chain candidates, caps, target).
    library:
        Optional standard-cell library override for cost accounting.
    rlc, upset_model:
        Optional power-domain electrical configuration propagated into
        the produced designs.
    """

    def __init__(self, config: FlowConfig,
                 library: Optional[StandardCellLibrary] = None,
                 rlc: Optional[RLCParameters] = None,
                 upset_model: Optional[RetentionUpsetModel] = None):
        self.config = config
        self.library = library
        self.rlc = rlc
        self.upset_model = upset_model

    # ------------------------------------------------------------------
    def _build(self, circuit: SequentialCircuit,
               num_chains: int) -> ProtectedDesign:
        return ProtectedDesign(
            circuit,
            codes=list(self.config.codes),
            num_chains=num_chains,
            test_width=self.config.test_width,
            clock_hz=self.config.clock_hz,
            library=self.library,
            rlc=self.rlc,
            upset_model=self.upset_model)

    def _admissible(self, cost: CostReport) -> bool:
        if (self.config.max_area_overhead_percent is not None
                and cost.area_overhead_percent
                > self.config.max_area_overhead_percent):
            return False
        if (self.config.max_latency_ns is not None
                and cost.latency_ns > self.config.max_latency_ns):
            return False
        return True

    def _score(self, cost: CostReport) -> float:
        """Lower is better; depends on the optimisation target."""
        target = self.config.target
        if target is OptimizationTarget.AREA:
            return cost.area_total_um2
        if target is OptimizationTarget.LATENCY:
            return cost.latency_ns
        if target is OptimizationTarget.ENERGY:
            return cost.encode_cost.energy_nj + cost.decode_cost.energy_nj
        # Balanced: geometric-mean-style combination of normalised terms.
        return (cost.area_total_um2 * cost.latency_ns
                * (cost.encode_cost.energy_nj + cost.decode_cost.energy_nj))

    # ------------------------------------------------------------------
    def synthesize(self, circuit: SequentialCircuit) -> SynthesisResult:
        """Run the four-step flow on a circuit and return the result.

        Steps (paper Fig. 4): insert scan chains, generate monitoring
        and correction logic, configure the power-gating controller,
        and evaluate the synthesis cost.  Candidate chain counts larger
        than the register count are skipped.
        """
        if self.config.num_chains is not None:
            candidates = [self.config.num_chains]
        else:
            candidates = [w for w in self.config.candidate_chains
                          if w <= circuit.num_registers]
            if not candidates:
                raise ValueError(
                    "no candidate chain count fits the circuit "
                    f"({circuit.num_registers} registers)")

        explored: List[CostReport] = []
        best: Optional[Tuple[float, ProtectedDesign, CostReport]] = None
        fallback: Optional[Tuple[float, ProtectedDesign, CostReport]] = None
        for num_chains in candidates:
            design = self._build(circuit, num_chains)
            cost = design.cost_report()
            explored.append(cost)
            score = self._score(cost)
            entry = (score, design, cost)
            if fallback is None or score < fallback[0]:
                fallback = entry
            if not self._admissible(cost):
                continue
            if best is None or score < best[0]:
                best = entry

        chosen = best if best is not None else fallback
        assert chosen is not None  # candidates is non-empty
        _, design, cost = chosen
        return SynthesisResult(design=design, cost=cost,
                               explored=tuple(explored))


__all__ = ["ReliabilityAwareSynthesizer", "SynthesisResult"]
