"""Flow configuration (the paper's "configuration file" input).

The synthesis flow of Fig. 4 is parameterised by a configuration file
"for providing the quality solutions in terms of area, power, latency
and energy".  :class:`FlowConfig` is that file as a dataclass, and it
can round-trip through a plain ``key = value`` text format so that the
examples can show a file-driven flow just like the EDA original.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

#: Splits a code list on commas that are not inside parentheses, so that
#: "hamming(7,4), crc16" parses as two entries.
_CODE_SEPARATOR = re.compile(r",(?![^()]*\))")


class OptimizationTarget(enum.Enum):
    """Which quality metric the flow should favour when picking ``W``."""

    AREA = "area"
    LATENCY = "latency"
    ENERGY = "energy"
    BALANCED = "balanced"


@dataclass
class FlowConfig:
    """Configuration of the reliability-aware synthesis flow.

    Attributes
    ----------
    codes:
        Monitoring code names (e.g. ``["hamming(7,4)"]`` or
        ``["hamming(7,4)", "crc16"]``).
    num_chains:
        Number of monitoring-mode scan chains ``W``; ``None`` lets the
        synthesizer pick it according to ``target`` and the candidate
        list.
    candidate_chains:
        Candidate values of ``W`` explored when ``num_chains`` is None.
    test_width:
        Manufacturing-test scan width.
    clock_mhz:
        Scan/encode clock in MHz (paper: 100 MHz).
    target:
        Optimisation target used for automatic ``W`` selection.
    max_area_overhead_percent:
        Optional hard cap on the protection area overhead; candidates
        above the cap are discarded (the paper suggests CRC + software
        recovery when "large area overhead is not acceptable").
    max_latency_ns:
        Optional hard cap on the encode/decode latency.
    """

    codes: List[str] = field(default_factory=lambda: ["hamming(7,4)"])
    num_chains: Optional[int] = None
    candidate_chains: List[int] = field(
        default_factory=lambda: [4, 8, 16, 40, 80])
    test_width: int = 4
    clock_mhz: float = 100.0
    target: OptimizationTarget = OptimizationTarget.BALANCED
    max_area_overhead_percent: Optional[float] = None
    max_latency_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.codes:
            raise ValueError("at least one monitoring code is required")
        if self.clock_mhz <= 0:
            raise ValueError("clock frequency must be positive")
        if self.num_chains is not None and self.num_chains <= 0:
            raise ValueError("num_chains must be positive when given")
        if not self.candidate_chains and self.num_chains is None:
            raise ValueError(
                "either num_chains or candidate_chains must be provided")
        if isinstance(self.target, str):
            self.target = OptimizationTarget(self.target)

    @property
    def clock_hz(self) -> float:
        """Clock frequency in hertz."""
        return self.clock_mhz * 1e6

    # ------------------------------------------------------------------
    # Plain-text round trip
    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """Serialise to the ``key = value`` configuration-file format."""
        lines = [
            "# reliability-aware synthesis flow configuration",
            f"codes = {', '.join(self.codes)}",
            f"num_chains = {self.num_chains if self.num_chains else 'auto'}",
            f"candidate_chains = {', '.join(str(w) for w in self.candidate_chains)}",
            f"test_width = {self.test_width}",
            f"clock_mhz = {self.clock_mhz}",
            f"target = {self.target.value}",
        ]
        if self.max_area_overhead_percent is not None:
            lines.append(
                f"max_area_overhead_percent = {self.max_area_overhead_percent}")
        if self.max_latency_ns is not None:
            lines.append(f"max_latency_ns = {self.max_latency_ns}")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_text(cls, text: str) -> "FlowConfig":
        """Parse the ``key = value`` configuration-file format."""
        values = {}
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            if "=" not in line:
                raise ValueError(f"malformed configuration line: {raw_line!r}")
            key, _, value = line.partition("=")
            values[key.strip()] = value.strip()

        kwargs = {}
        if "codes" in values:
            kwargs["codes"] = [
                c.strip() for c in _CODE_SEPARATOR.split(values["codes"])
                if c.strip()]
        if "num_chains" in values:
            raw = values["num_chains"]
            kwargs["num_chains"] = None if raw == "auto" else int(raw)
        if "candidate_chains" in values:
            kwargs["candidate_chains"] = [
                int(w) for w in values["candidate_chains"].split(",")
                if w.strip()]
        if "test_width" in values:
            kwargs["test_width"] = int(values["test_width"])
        if "clock_mhz" in values:
            kwargs["clock_mhz"] = float(values["clock_mhz"])
        if "target" in values:
            kwargs["target"] = OptimizationTarget(values["target"])
        if "max_area_overhead_percent" in values:
            kwargs["max_area_overhead_percent"] = float(
                values["max_area_overhead_percent"])
        if "max_latency_ns" in values:
            kwargs["max_latency_ns"] = float(values["max_latency_ns"])
        return cls(**kwargs)

    def save(self, path: Union[str, Path]) -> None:
        """Write the configuration file to disk."""
        Path(path).write_text(self.to_text(), encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FlowConfig":
        """Read a configuration file from disk."""
        return cls.from_text(Path(path).read_text(encoding="utf-8"))


__all__ = ["FlowConfig", "OptimizationTarget"]
