"""Leakage-power accounting for power-gated domains.

Power gating exists to cut leakage: during sleep, the domain's leakage
is limited to what flows through the (high-Vt, off) sleep transistors
plus the always-on retention latches.  The paper quotes a 95 % leakage
reduction for the ARM926EJ as motivation.  This module provides a simple
per-cell leakage roll-up so that examples and benchmarks can report the
leakage saved by gating alongside the energy spent on encode/decode ---
i.e. the break-even sleep duration for the proposed protection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.circuit.netlist import Netlist
from repro.tech.library import StandardCellLibrary, default_library


@dataclass(frozen=True)
class LeakageReport:
    """Leakage summary of one power domain.

    All values are in watts.
    """

    active_leakage: float
    sleep_leakage: float

    @property
    def reduction(self) -> float:
        """Fractional leakage reduction achieved by gating (0..1)."""
        if self.active_leakage <= 0:
            return 0.0
        return 1.0 - self.sleep_leakage / self.active_leakage

    def savings(self, sleep_duration_s: float) -> float:
        """Energy (joules) saved by sleeping for ``sleep_duration_s``."""
        return (self.active_leakage - self.sleep_leakage) * sleep_duration_s


class LeakageModel:
    """Computes active and sleep leakage of a gated design.

    Parameters
    ----------
    library:
        The standard-cell library providing per-cell leakage numbers.
    switch_leakage_fraction:
        Fraction of the active leakage that still flows in sleep mode
        through the off sleep transistors (default 3 %).
    retention_leakage_fraction:
        Additional fraction contributed by the always-on retention
        latches and monitoring storage (default 2 %), giving the paper's
        ~95 % overall reduction by default.
    """

    def __init__(self, library: Optional[StandardCellLibrary] = None,
                 switch_leakage_fraction: float = 0.03,
                 retention_leakage_fraction: float = 0.02):
        if not (0 <= switch_leakage_fraction < 1):
            raise ValueError("switch leakage fraction must be in [0, 1)")
        if not (0 <= retention_leakage_fraction < 1):
            raise ValueError("retention leakage fraction must be in [0, 1)")
        self.library = library if library is not None else default_library()
        self.switch_leakage_fraction = switch_leakage_fraction
        self.retention_leakage_fraction = retention_leakage_fraction

    def active_leakage(self, netlist: Netlist) -> float:
        """Total leakage (watts) with the domain powered on."""
        total = 0.0
        for cell, count in netlist.cell_counts().items():
            total += self.library.cell(cell).leakage_nw * 1e-9 * count
        return total

    def sleep_leakage(self, netlist: Netlist) -> float:
        """Leakage (watts) with the domain gated off."""
        active = self.active_leakage(netlist)
        return active * (self.switch_leakage_fraction
                         + self.retention_leakage_fraction)

    def report(self, netlist: Netlist) -> LeakageReport:
        """Full leakage report for a netlist."""
        active = self.active_leakage(netlist)
        sleep = active * (self.switch_leakage_fraction
                          + self.retention_leakage_fraction)
        return LeakageReport(active_leakage=active, sleep_leakage=sleep)

    def break_even_sleep_time(self, netlist: Netlist,
                              overhead_energy_j: float) -> float:
        """Sleep duration (seconds) at which gating pays for itself.

        ``overhead_energy_j`` is the energy spent on entering and
        leaving sleep (retention save/restore, encode/decode, wake-up
        recharge).  Below the returned duration, gating costs more
        energy than it saves.
        """
        report = self.report(netlist)
        saved_per_second = report.active_leakage - report.sleep_leakage
        if saved_per_second <= 0:
            return float("inf")
        return overhead_energy_j / saved_per_second


__all__ = ["LeakageModel", "LeakageReport"]
