"""Rush-current and supply-droop model.

When a power-gated domain wakes up, its internal (discharged)
capacitance must be recharged through the sleep transistors.  The paper
-- following its reference [7] (Kim, Kosonocky, Knebel, ISLPED'03) --
models this transient as the step response of a series RLC circuit:

* ``R`` -- effective resistance of the sleep-transistor network plus the
  local power grid,
* ``L`` -- package and grid inductance,
* ``C`` -- the gated domain's internal plus decoupling capacitance.

The rush current ``i(t)`` flowing through the shared supply rails
induces a voltage ``v(t) = R_share * i(t) + L_share * di/dt`` across the
rail parasitics; that voltage transient is seen by the *always-on*
retention latches and can flip them --- this is the failure mechanism
the methodology protects against.

The model supports the standard mitigation baselines of [7]/[8]
(staggered switch turn-on), so that the trade-off between "reduce the
rush current" and "monitor and correct the state" can be explored.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace
from typing import List, Tuple


class DampingRegime(enum.Enum):
    """Damping classification of the wake-up RLC transient."""

    UNDERDAMPED = "underdamped"
    CRITICALLY_DAMPED = "critically_damped"
    OVERDAMPED = "overdamped"


@dataclass(frozen=True)
class RLCParameters:
    """Electrical parameters of the wake-up transient.

    Attributes
    ----------
    vdd:
        Supply voltage in volts (1.2 V is typical for the paper's
        120 nm node).
    resistance:
        Total series resistance in ohms (sleep-transistor network plus
        grid).
    inductance:
        Series inductance in henries (package + grid).
    capacitance:
        Gated-domain capacitance in farads to be recharged at wake-up.
    share_resistance:
        Portion of the resistance shared with the always-on rail; the
        rush current times this resistance appears as droop at the
        retention latches.
    share_inductance:
        Portion of the inductance shared with the always-on rail.  The
        default is 0 because an ideal voltage step makes ``di/dt`` at
        ``t = 0+`` independent of the switch resistance, which would
        hide the benefit of staggered turn-on; set it to a non-zero
        value to study the inductive component explicitly.
    """

    vdd: float = 1.2
    resistance: float = 2.0
    inductance: float = 1.0e-9
    capacitance: float = 200.0e-12
    share_resistance: float = 0.5
    share_inductance: float = 0.0

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise ValueError("vdd must be positive")
        if self.resistance <= 0 or self.inductance <= 0 or self.capacitance <= 0:
            raise ValueError("R, L and C must all be positive")
        if self.share_resistance < 0 or self.share_inductance < 0:
            raise ValueError("shared parasitics cannot be negative")

    @property
    def alpha(self) -> float:
        """Neper frequency ``R / (2L)`` in rad/s."""
        return self.resistance / (2.0 * self.inductance)

    @property
    def omega0(self) -> float:
        """Undamped natural frequency ``1 / sqrt(LC)`` in rad/s."""
        return 1.0 / math.sqrt(self.inductance * self.capacitance)

    @property
    def damping_ratio(self) -> float:
        """Damping ratio ``zeta = alpha / omega0``."""
        return self.alpha / self.omega0

    @property
    def regime(self) -> DampingRegime:
        """Damping regime of the transient."""
        zeta = self.damping_ratio
        if abs(zeta - 1.0) < 1e-9:
            return DampingRegime.CRITICALLY_DAMPED
        if zeta < 1.0:
            return DampingRegime.UNDERDAMPED
        return DampingRegime.OVERDAMPED


class RushCurrentModel:
    """Analytic step-response model of the wake-up rush current.

    Parameters
    ----------
    params:
        The electrical parameters of the transient.
    num_switch_stages:
        Number of stages the sleep-transistor network is divided into.
        1 reproduces the naive "turn everything on at once" wake-up;
        larger values model the staggered turn-on mitigation of the
        paper's references [7] and [8] (each stage only recharges a
        fraction of the capacitance through a larger resistance, so the
        peak current and hence the peak droop shrink roughly with the
        number of stages).
    """

    def __init__(self, params: RLCParameters, num_switch_stages: int = 1):
        if num_switch_stages <= 0:
            raise ValueError("number of switch stages must be positive")
        self.params = params
        self.num_switch_stages = num_switch_stages

    # ------------------------------------------------------------------
    # Single-stage analytic waveforms
    # ------------------------------------------------------------------
    def _stage_params(self) -> RLCParameters:
        """Effective parameters of one wake-up stage.

        With ``s`` stages, each stage recharges ``C / s`` of the domain
        capacitance while only ``1 / s`` of the switches are conducting,
        i.e. through ``s * R`` of switch resistance.
        """
        s = self.num_switch_stages
        return replace(self.params,
                       resistance=self.params.resistance * s,
                       capacitance=self.params.capacitance / s)

    def current(self, t: float) -> float:
        """Rush current ``i(t)`` in amperes at time ``t`` seconds."""
        if t < 0:
            return 0.0
        p = self._stage_params()
        vdd, L = p.vdd, p.inductance
        alpha, omega0 = p.alpha, p.omega0
        regime = p.regime
        if regime is DampingRegime.UNDERDAMPED:
            omega_d = math.sqrt(omega0 ** 2 - alpha ** 2)
            return (vdd / (omega_d * L)) * math.exp(-alpha * t) * math.sin(
                omega_d * t)
        if regime is DampingRegime.CRITICALLY_DAMPED:
            return (vdd / L) * t * math.exp(-alpha * t)
        # Overdamped.
        root = math.sqrt(alpha ** 2 - omega0 ** 2)
        s1, s2 = -alpha + root, -alpha - root
        return (vdd / (L * (s1 - s2))) * (math.exp(s1 * t) - math.exp(s2 * t))

    def current_derivative(self, t: float) -> float:
        """``di/dt`` in A/s at time ``t`` (used for the L*di/dt droop)."""
        if t < 0:
            return 0.0
        p = self._stage_params()
        vdd, L = p.vdd, p.inductance
        alpha, omega0 = p.alpha, p.omega0
        regime = p.regime
        if regime is DampingRegime.UNDERDAMPED:
            omega_d = math.sqrt(omega0 ** 2 - alpha ** 2)
            k = vdd / (omega_d * L)
            return k * math.exp(-alpha * t) * (
                omega_d * math.cos(omega_d * t) - alpha * math.sin(omega_d * t))
        if regime is DampingRegime.CRITICALLY_DAMPED:
            return (vdd / L) * math.exp(-alpha * t) * (1.0 - alpha * t)
        root = math.sqrt(alpha ** 2 - omega0 ** 2)
        s1, s2 = -alpha + root, -alpha - root
        return (vdd / (L * (s1 - s2))) * (
            s1 * math.exp(s1 * t) - s2 * math.exp(s2 * t))

    def droop(self, t: float) -> float:
        """Supply droop (volts) seen at the always-on rail at time ``t``."""
        p = self.params
        return (p.share_resistance * self.current(t)
                + p.share_inductance * self.current_derivative(t))

    # ------------------------------------------------------------------
    # Peak values and waveforms
    # ------------------------------------------------------------------
    def peak_current(self) -> float:
        """Maximum rush current of one wake-up stage in amperes."""
        _, peak = self._search_peak(self.current)
        return peak

    def peak_droop(self) -> float:
        """Maximum supply droop at the always-on rail in volts."""
        _, peak = self._search_peak(self.droop)
        return peak

    def settle_time(self, tolerance: float = 0.02) -> float:
        """Time for the rush current to fall below ``tolerance`` x peak.

        This is the "power supply become stable" point of the paper's
        wake-up sequence (Fig. 3): restoring state before this point
        would race against the droop.
        """
        peak_t, peak = self._search_peak(self.current)
        if peak <= 0.0:
            return 0.0
        threshold = tolerance * peak
        t = peak_t
        dt = self._time_step()
        horizon = self._time_horizon()
        while t < horizon:
            t += dt
            window = [abs(self.current(t + k * dt)) for k in range(5)]
            if max(window) < threshold:
                return t
        return horizon

    def waveform(self, duration: float = None, num_points: int = 400
                 ) -> Tuple[List[float], List[float], List[float]]:
        """Sampled ``(times, current, droop)`` waveforms.

        ``duration`` defaults to ten natural periods of the transient.
        """
        if duration is None:
            duration = self._time_horizon()
        if num_points <= 1:
            raise ValueError("num_points must be at least 2")
        times = [duration * i / (num_points - 1) for i in range(num_points)]
        currents = [self.current(t) for t in times]
        droops = [self.droop(t) for t in times]
        return times, currents, droops

    def total_wakeup_charge(self) -> float:
        """Charge (coulombs) delivered over a full wake-up.

        All stages together recharge the full domain capacitance to
        ``vdd`` regardless of staggering; staggering only spreads the
        charge delivery over time.
        """
        return self.params.capacitance * self.params.vdd

    def wakeup_energy(self) -> float:
        """Energy (joules) drawn from the supply during wake-up.

        Charging a capacitance C to Vdd through a resistive path draws
        ``C * Vdd**2`` from the supply (half stored, half dissipated).
        """
        return self.params.capacitance * self.params.vdd ** 2

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _time_horizon(self) -> float:
        p = self._stage_params()
        return 10.0 * max(2.0 * math.pi / p.omega0, 1.0 / p.alpha)

    def _time_step(self) -> float:
        return self._time_horizon() / 4000.0

    def _search_peak(self, fn) -> Tuple[float, float]:
        dt = self._time_step()
        horizon = self._time_horizon()
        best_t, best_v = 0.0, 0.0
        t = 0.0
        while t <= horizon:
            v = abs(fn(t))
            if v > best_v:
                best_t, best_v = t, v
            t += dt
        return best_t, best_v


__all__ = ["DampingRegime", "RLCParameters", "RushCurrentModel"]
