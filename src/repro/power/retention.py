"""Retention-latch upset model.

The paper's threat model: the voltage transient induced on the supply
rails by the wake-up rush current "may corrupt the state retention
latches connected to it".  This module converts a droop magnitude into
per-latch upset decisions, giving the reproduction a *physically
motivated* fault source in addition to the paper's LFSR-driven error
injector (which injects errors irrespective of their physical cause).

The upset probability uses a logistic function of the droop-to-margin
ratio: well below the latch's static noise margin the probability is
essentially zero, around the margin it rises steeply, and far above the
margin every exposed latch flips.  The exact functional form is not
specified by the paper (it treats error arrival as given); the logistic
form captures the qualitative behaviour every such model shares --- a
threshold with a soft edge --- and its two parameters (margin, slope)
are exposed for sensitivity studies.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

from repro.circuit.flipflop import RetentionFlipFlop


class RetentionUpsetModel:
    """Probability model for droop-induced retention-latch upsets.

    Parameters
    ----------
    nominal_margin:
        Droop (in volts) at which a nominal latch has a 50 % chance of
        flipping.  Retention latches are high-Vt and slow but also
        comparatively robust; 0.3--0.5 V of droop on a 1.2 V rail is a
        plausible hazard region.
    slope:
        Width (in volts) of the transition region of the logistic
        function; smaller values give a harder threshold.
    seed:
        Seed for the internal random number generator (reproducibility
        of Monte-Carlo campaigns).
    """

    def __init__(self, nominal_margin: float = 0.35, slope: float = 0.05,
                 seed: Optional[int] = None):
        if nominal_margin <= 0:
            raise ValueError("nominal margin must be positive")
        if slope <= 0:
            raise ValueError("slope must be positive")
        self.nominal_margin = nominal_margin
        self.slope = slope
        self._rng = random.Random(seed)

    def upset_probability(self, droop: float,
                          margin_scale: float = 1.0) -> float:
        """Probability that a latch with the given margin scale flips.

        ``margin_scale`` models per-latch process variation: a latch
        with ``retention_margin = 0.9`` flips slightly more easily than
        a nominal one.
        """
        if droop <= 0:
            return 0.0
        margin = self.nominal_margin * margin_scale
        x = (droop - margin) / self.slope
        # Clamp to avoid overflow in exp for extreme droop values.
        if x > 40:
            return 1.0
        if x < -40:
            return 0.0
        return 1.0 / (1.0 + math.exp(-x))

    def sample_upsets(self, flops: Sequence[RetentionFlipFlop],
                      droop: float) -> List[int]:
        """Decide which retention latches flip for a given droop.

        Returns the indices of the flipped latches and applies the
        corruption to the latches themselves.
        """
        flipped: List[int] = []
        for index, ff in enumerate(flops):
            p = self.upset_probability(droop, ff.retention_margin)
            if p > 0.0 and self._rng.random() < p:
                ff.corrupt_retention()
                flipped.append(index)
        return flipped

    def expected_upsets(self, num_latches: int, droop: float,
                        margin_scale: float = 1.0) -> float:
        """Expected number of upsets among ``num_latches`` nominal latches."""
        return num_latches * self.upset_probability(droop, margin_scale)

    def reseed(self, seed: Optional[int]) -> None:
        """Reset the internal random number generator."""
        self._rng = random.Random(seed)


__all__ = ["RetentionUpsetModel"]
