"""Power domains and sleep-transistor networks.

A :class:`PowerDomain` groups a gated circuit with its header-switch
network and the electrical parameters of its wake-up transient.  The
domain exposes the two operations the power-gating controller needs ---
``enter_sleep`` and ``wake_up`` --- and reports each wake-up as a
:class:`WakeEvent` carrying the rush-current/droop figures that drive
the retention-upset model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.circuit.base import SequentialCircuit
from repro.power.retention import RetentionUpsetModel
from repro.power.rush_current import RLCParameters, RushCurrentModel


#: Wake-up transients memoised process-wide on the (frozen) RLC
#: parameters and switch staging: the transient is a deterministic
#: function of exactly those, and its numeric peak/settle searches are
#: by far the most expensive part of a domain's *first* wake-up.  An
#: instance-level cache already amortised repeat cycles, but campaign
#: workers rebuild the whole design -- domain included -- per chunk,
#: paying the searches over and over for identical electricals; the
#: shared cache makes the cost once-per-process (the same reasoning as
#: the GF(2) matrix cache of :mod:`repro.codes.plane`).
_TRANSIENT_CACHE: dict = {}


class DomainState(enum.Enum):
    """Power state of a gated domain."""

    ACTIVE = "active"
    SLEEP = "sleep"


@dataclass(frozen=True)
class SwitchNetwork:
    """The header (sleep-transistor) network of a power domain.

    Attributes
    ----------
    num_switches:
        Total number of header switch transistors.
    on_resistance_per_switch:
        On-resistance of one switch in ohms.
    leakage_per_switch_nw:
        Off-state leakage of one switch in nanowatts.
    stages:
        Number of turn-on stages (1 = all at once; more stages model
        the staggered wake-up of the paper's references [7]/[8]).
    """

    num_switches: int = 64
    on_resistance_per_switch: float = 80.0
    leakage_per_switch_nw: float = 1.5
    stages: int = 1

    def __post_init__(self) -> None:
        if self.num_switches <= 0:
            raise ValueError("switch count must be positive")
        if self.on_resistance_per_switch <= 0:
            raise ValueError("switch on-resistance must be positive")
        if self.stages <= 0 or self.stages > self.num_switches:
            raise ValueError(
                "stages must be between 1 and the number of switches")

    @property
    def effective_resistance(self) -> float:
        """Resistance of the fully-on parallel switch network (ohms)."""
        return self.on_resistance_per_switch / self.num_switches

    @property
    def total_leakage_w(self) -> float:
        """Off-state leakage of the whole network in watts."""
        return self.num_switches * self.leakage_per_switch_nw * 1e-9


@dataclass(frozen=True)
class WakeEvent:
    """Record of one wake-up transient."""

    peak_current_a: float
    peak_droop_v: float
    settle_time_s: float
    wakeup_energy_j: float
    upset_indices: tuple

    @property
    def num_upsets(self) -> int:
        """Number of retention latches flipped by this wake-up."""
        return len(self.upset_indices)


class PowerDomain:
    """A power-gated domain wrapping a sequential circuit.

    Parameters
    ----------
    circuit:
        The gated design (its registers must be retention flip-flops).
    switches:
        The header switch network.
    rlc:
        Electrical parameters of the wake-up transient.  The series
        resistance is derived from the switch network if not supplied.
    upset_model:
        Optional droop-to-upset model.  When omitted, wake-ups never
        corrupt retention latches by themselves (fault injection can
        still be applied externally, as in the paper's FPGA campaign).
    """

    def __init__(self, circuit: SequentialCircuit,
                 switches: Optional[SwitchNetwork] = None,
                 rlc: Optional[RLCParameters] = None,
                 upset_model: Optional[RetentionUpsetModel] = None):
        self.circuit = circuit
        self.switches = switches if switches is not None else SwitchNetwork()
        if rlc is None:
            # Capacitance scales with circuit size: ~0.2 pF of switched
            # capacitance per register-equivalent of logic.
            capacitance = max(circuit.num_registers, 1) * 0.2e-12
            rlc = RLCParameters(
                resistance=self.switches.effective_resistance + 1.0,
                capacitance=capacitance)
        self.rlc = rlc
        self.upset_model = upset_model
        self._state = DomainState.ACTIVE
        self._wake_history: List[WakeEvent] = []

    # ------------------------------------------------------------------
    @property
    def state(self) -> DomainState:
        """Current power state of the domain."""
        return self._state

    @property
    def is_asleep(self) -> bool:
        """True while the domain is gated off."""
        return self._state is DomainState.SLEEP

    @property
    def wake_history(self) -> List[WakeEvent]:
        """All wake-up events recorded so far."""
        return list(self._wake_history)

    # ------------------------------------------------------------------
    def enter_sleep(self) -> None:
        """Save state into retention latches and gate the domain off."""
        if self._state is DomainState.SLEEP:
            raise RuntimeError("domain is already asleep")
        self.circuit.retain_all()
        self.circuit.power_off_all()
        self._state = DomainState.SLEEP

    def wake_up(self) -> WakeEvent:
        """Re-energise the domain and restore state from retention.

        The rush-current model is evaluated for this wake-up; if an
        upset model is attached, the resulting droop is applied to the
        retention latches *before* the restore, so any upset propagates
        into the architectural state exactly as in the real failure
        mechanism.
        """
        if self._state is DomainState.ACTIVE:
            raise RuntimeError("domain is already active")
        key = (self.rlc, self.switches.stages)
        transient = _TRANSIENT_CACHE.get(key)
        if transient is None:
            rush = RushCurrentModel(self.rlc,
                                    num_switch_stages=self.switches.stages)
            transient = (rush.peak_current(), rush.peak_droop(),
                         rush.settle_time(), rush.wakeup_energy())
            _TRANSIENT_CACHE[key] = transient
        peak_current, peak_droop, settle, wakeup_energy = transient
        upsets: tuple = ()
        if self.upset_model is not None:
            flipped = self.upset_model.sample_upsets(
                self.circuit.registers, peak_droop)
            upsets = tuple(flipped)
        self.circuit.power_on_all()
        self.circuit.restore_all()
        self._state = DomainState.ACTIVE
        event = WakeEvent(
            peak_current_a=peak_current,
            peak_droop_v=peak_droop,
            settle_time_s=settle,
            wakeup_energy_j=wakeup_energy,
            upset_indices=upsets)
        self._wake_history.append(event)
        return event


__all__ = ["DomainState", "SwitchNetwork", "WakeEvent", "PowerDomain"]
