"""Power-gating substrate.

Models the physical side of state-retention power gating:

* :mod:`repro.power.domain` -- a power domain with its sleep-transistor
  (header switch) network and the sleep/wake sequencing hooks;
* :mod:`repro.power.rush_current` -- the rush-current / supply-droop
  model: the paper (and its reference [7]) model the wake-up transient
  as the step response of a series RLC circuit formed by the package
  and grid parasitics and the gated domain's decoupled capacitance;
* :mod:`repro.power.retention` -- the retention-latch upset model that
  converts a supply-droop waveform into bit flips in the always-on
  retention latches;
* :mod:`repro.power.leakage` -- active/sleep leakage accounting (power
  gating's raison d'etre: the paper quotes a 95 % leakage reduction for
  the ARM926EJ).
"""

from repro.power.domain import PowerDomain, SwitchNetwork, WakeEvent
from repro.power.rush_current import RLCParameters, RushCurrentModel, DampingRegime
from repro.power.retention import RetentionUpsetModel
from repro.power.leakage import LeakageModel

__all__ = [
    "PowerDomain",
    "SwitchNetwork",
    "WakeEvent",
    "RLCParameters",
    "RushCurrentModel",
    "DampingRegime",
    "RetentionUpsetModel",
    "LeakageModel",
]
