"""The FIFO validation test bench (paper Fig. 8).

Reproduces the five-stage test sequence of Section IV around a
protected FIFO (FIFO_A) and an error-free reference FIFO (FIFO_B):

1. reset both FIFOs so they start in the same state;
2. write the same random data to both;
3. send the sleep signal to FIFO_A (encode + retention save + gate off);
4. wait for sleep, then send the wake-up signal (gate on + restore +
   decode/correct); the error injector may corrupt FIFO_A in between;
5. read both FIFOs and compare the outputs.

The event counter of Fig. 8 is represented by the returned
:class:`TestSequenceResult` records and the aggregation performed by
:mod:`repro.validation.campaign`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.circuit.fifo import SyncFIFO
from repro.core.controller import ErrorCode
from repro.core.protected import CycleOutcome, ProtectedDesign
from repro.faults.patterns import ErrorPattern
from repro.validation.comparator import Comparator, ComparisonResult
from repro.validation.stimulus import StimulusGenerator


@dataclass(frozen=True)
class TestSequenceResult:
    """Outcome of one five-stage test sequence.

    Combines the monitor's view (from the protected design's
    :class:`~repro.core.protected.CycleOutcome`) with the comparator's
    ground-truth view of the architectural state.
    """

    cycle: CycleOutcome
    comparison: ComparisonResult
    words_written: int

    @property
    def error_reported(self) -> bool:
        """True when FIFO_A's monitor reported anything (the paper's
        "errors reported by FIFO_A" counter input)."""
        return self.cycle.detected

    @property
    def mismatch_reported(self) -> bool:
        """True when the comparator found FIFO_A != FIFO_B."""
        return not self.comparison.match

    @property
    def outcome_consistent(self) -> bool:
        """Monitor verdict is not contradicted by the comparator.

        The dangerous case is a *missed* corruption: the comparator sees
        wrong data coming out of FIFO_A while the monitor claimed the
        state was clean or fully repaired.  The converse (monitor flags
        an uncorrectable error but the comparator happens to see
        matching outputs) is consistent --- the corrupted bits may live
        in state the read-out does not observe, e.g. unoccupied FIFO
        rows or pointer wrap bits.
        """
        if not self.mismatch_reported:
            return True
        return self.cycle.error_code is ErrorCode.UNCORRECTABLE


@dataclass(frozen=True, slots=True)
class BatchSequenceResult:
    """Outcome of one sequence of a *batched* test run.

    Slotted: the object path builds one of these per sequence of every
    batch, so allocation cost matters at campaign scale (the columnar
    summary path of :meth:`FIFOTestbench.run_sequence_batch_summary`
    builds none).

    Batched sequences are simulated as virtual copies of one loaded
    FIFO state (see
    :meth:`~repro.core.protected.ProtectedDesign.sleep_wake_cycle_batch`),
    so stage 5's read-out comparison is replaced by a **state-domain
    comparator**: the ground truth is the bit-for-bit architectural
    state (``cycle.state_intact``) instead of replaying FIFO reads.
    This is strictly *stronger* than the read-out comparator -- a
    corruption hiding in unobserved state (unoccupied rows, pointer
    wrap bits) still counts as a mismatch -- and it is identical across
    engines, which is what makes batched campaigns bit-reproducible
    between the bit-plane engine and the per-sequence fallback.

    The property names mirror :class:`TestSequenceResult` so the
    streaming campaign counters consume either interchangeably.
    """

    cycle: CycleOutcome
    words_written: int

    @property
    def error_reported(self) -> bool:
        """True when FIFO_A's monitor reported anything."""
        return self.cycle.detected

    @property
    def mismatch_reported(self) -> bool:
        """True when the architectural state differs from the pre-sleep
        state (the state-domain comparator's verdict)."""
        return not self.cycle.state_intact

    @property
    def outcome_consistent(self) -> bool:
        """Monitor verdict is not contradicted by the state comparison
        (same rule as :attr:`TestSequenceResult.outcome_consistent`)."""
        if not self.mismatch_reported:
            return True
        return self.cycle.error_code is ErrorCode.UNCORRECTABLE


class FIFOTestbench:
    """Software equivalent of the paper's FPGA test bench.

    Parameters
    ----------
    protected_fifo:
        The protected design wrapping FIFO_A.  Its circuit must be a
        :class:`~repro.circuit.fifo.SyncFIFO`.
    reference_fifo:
        FIFO_B; created automatically (same geometry) when omitted.
    stimulus:
        The random data source; created from ``seed`` when omitted.
    words_per_sequence:
        How many words stage 2 writes into both FIFOs (defaults to half
        the FIFO depth so pointer wrap-around is exercised over a
        campaign).
    seed:
        Seed for the default stimulus generator.
    """

    def __init__(self, protected_fifo: ProtectedDesign,
                 reference_fifo: Optional[SyncFIFO] = None,
                 stimulus: Optional[StimulusGenerator] = None,
                 words_per_sequence: Optional[int] = None,
                 seed: Optional[int] = 2010):
        if not isinstance(protected_fifo.circuit, SyncFIFO):
            raise TypeError(
                "FIFOTestbench requires a ProtectedDesign wrapping a SyncFIFO")
        self.dut_design = protected_fifo
        self.dut: SyncFIFO = protected_fifo.circuit
        self.reference = (reference_fifo if reference_fifo is not None
                          else SyncFIFO(self.dut.width, self.dut.depth,
                                        name=f"{self.dut.name}_ref"))
        if (self.reference.width != self.dut.width
                or self.reference.depth != self.dut.depth):
            raise ValueError(
                "reference FIFO must have the same geometry as the DUT")
        self.stimulus = (stimulus if stimulus is not None
                         else StimulusGenerator(self.dut.width, seed=seed))
        self.words_per_sequence = (words_per_sequence
                                   if words_per_sequence is not None
                                   else max(1, self.dut.depth // 2))
        self.comparator = Comparator()

    # ------------------------------------------------------------------
    def run_sequence(self, injection: Optional[ErrorPattern] = None,
                     inject_phase: str = "sleep") -> TestSequenceResult:
        """Run one five-stage test sequence with optional injection."""
        # Stage 1: reset both FIFOs to the same state.
        self.dut.reset()
        self.reference.reset()
        # Stage 2: write the same random data to both.
        words = self.stimulus.burst(self.words_per_sequence)
        for word in words:
            self.dut.push(word)
            self.reference.push(list(word))
        # Stages 3 and 4: sleep, (inject), wake, decode.
        cycle = self.dut_design.sleep_wake_cycle(
            injection=injection, inject_phase=inject_phase)
        # Stage 5: read both FIFOs and compare.
        comparison = self.comparator.compare(self.dut, self.reference)
        return TestSequenceResult(cycle=cycle, comparison=comparison,
                                  words_written=len(words))

    def run_sequences(self, injections: Sequence[Optional[ErrorPattern]],
                      inject_phase: str = "sleep"
                      ) -> Sequence[TestSequenceResult]:
        """Run one sequence per entry of ``injections``."""
        return [self.run_sequence(injection, inject_phase)
                for injection in injections]

    def run_sequence_batch(self,
                           injections: Sequence[Optional[ErrorPattern]],
                           inject_phase: str = "sleep"
                           ) -> List[BatchSequenceResult]:
        """Run a batch of test sequences from one loaded FIFO state.

        Stages 1--2 run once for the batch (reset, one random burst
        into FIFO_A); stages 3--4 run as a
        :meth:`~repro.core.protected.ProtectedDesign.sleep_wake_cycle_batch`
        with one injection per sequence; stage 5 uses the state-domain
        comparator of :class:`BatchSequenceResult`.  With a
        batch-capable engine the whole batch costs one bit-plane pass;
        with any other engine the design falls back to an equivalent
        per-sequence loop, so the returned statistics are engine-
        independent (the batched-campaign CI smoke relies on this).
        """
        self.dut.reset()
        words = self.stimulus.burst(self.words_per_sequence)
        for word in words:
            self.dut.push(word)
        outcomes = self.dut_design.sleep_wake_cycle_batch(
            injections, inject_phase=inject_phase)
        return [BatchSequenceResult(cycle=outcome, words_written=len(words))
                for outcome in outcomes]

    def run_sequence_batch_summary(self, flips, batch_size: int,
                                   inject_phase: str = "sleep",
                                   path: str = "auto"):
        """Run a batch of test sequences, returning columnar verdicts.

        The summary twin of :meth:`run_sequence_batch`: stages 1--2 run
        once for the batch (reset, one stimulus burst -- drawn from the
        *same* stimulus stream as the object path, so the two paths see
        identical loaded states), stages 3--5 run as one
        :meth:`~repro.core.protected.ProtectedDesign.\
sleep_wake_cycle_batch_summary` whose vectorised state-domain
        comparator doubles as stage 5.  ``flips`` is the batch's
        injection: a sampled :class:`~repro.faults.batch.PatternBatch`
        (preferred -- array engines resolve it without per-flip Python
        work) or a per-cell sequence-mask dict
        (:data:`~repro.faults.batch.BatchFlips`).  Returns a
        :class:`~repro.engines.base.BatchOutcomeArrays`; the campaign
        counters ingest it through
        :meth:`~repro.campaigns.stats.StreamingCampaignResult.add_batch`
        with statistics bit-identical to the object path's.
        ``path`` forwards to the engine's summary-path selection
        (``"auto"`` / ``"delta"`` / ``"dense"``, plus ``"jit"`` on the
        jit engine).
        """
        self.dut.reset()
        words = self.stimulus.burst(self.words_per_sequence)
        for word in words:
            self.dut.push(word)
        return self.dut_design.sleep_wake_cycle_batch_summary(
            flips, batch_size, inject_phase=inject_phase, path=path)


__all__ = ["FIFOTestbench", "TestSequenceResult", "BatchSequenceResult"]
