"""The FIFO validation test bench (paper Fig. 8).

Reproduces the five-stage test sequence of Section IV around a
protected FIFO (FIFO_A) and an error-free reference FIFO (FIFO_B):

1. reset both FIFOs so they start in the same state;
2. write the same random data to both;
3. send the sleep signal to FIFO_A (encode + retention save + gate off);
4. wait for sleep, then send the wake-up signal (gate on + restore +
   decode/correct); the error injector may corrupt FIFO_A in between;
5. read both FIFOs and compare the outputs.

The event counter of Fig. 8 is represented by the returned
:class:`TestSequenceResult` records and the aggregation performed by
:mod:`repro.validation.campaign`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.circuit.fifo import SyncFIFO
from repro.core.controller import ErrorCode
from repro.core.protected import CycleOutcome, ProtectedDesign
from repro.faults.patterns import ErrorPattern
from repro.validation.comparator import Comparator, ComparisonResult
from repro.validation.stimulus import StimulusGenerator


@dataclass(frozen=True)
class TestSequenceResult:
    """Outcome of one five-stage test sequence.

    Combines the monitor's view (from the protected design's
    :class:`~repro.core.protected.CycleOutcome`) with the comparator's
    ground-truth view of the architectural state.
    """

    cycle: CycleOutcome
    comparison: ComparisonResult
    words_written: int

    @property
    def error_reported(self) -> bool:
        """True when FIFO_A's monitor reported anything (the paper's
        "errors reported by FIFO_A" counter input)."""
        return self.cycle.detected

    @property
    def mismatch_reported(self) -> bool:
        """True when the comparator found FIFO_A != FIFO_B."""
        return not self.comparison.match

    @property
    def outcome_consistent(self) -> bool:
        """Monitor verdict is not contradicted by the comparator.

        The dangerous case is a *missed* corruption: the comparator sees
        wrong data coming out of FIFO_A while the monitor claimed the
        state was clean or fully repaired.  The converse (monitor flags
        an uncorrectable error but the comparator happens to see
        matching outputs) is consistent --- the corrupted bits may live
        in state the read-out does not observe, e.g. unoccupied FIFO
        rows or pointer wrap bits.
        """
        if not self.mismatch_reported:
            return True
        return self.cycle.error_code is ErrorCode.UNCORRECTABLE


class FIFOTestbench:
    """Software equivalent of the paper's FPGA test bench.

    Parameters
    ----------
    protected_fifo:
        The protected design wrapping FIFO_A.  Its circuit must be a
        :class:`~repro.circuit.fifo.SyncFIFO`.
    reference_fifo:
        FIFO_B; created automatically (same geometry) when omitted.
    stimulus:
        The random data source; created from ``seed`` when omitted.
    words_per_sequence:
        How many words stage 2 writes into both FIFOs (defaults to half
        the FIFO depth so pointer wrap-around is exercised over a
        campaign).
    seed:
        Seed for the default stimulus generator.
    """

    def __init__(self, protected_fifo: ProtectedDesign,
                 reference_fifo: Optional[SyncFIFO] = None,
                 stimulus: Optional[StimulusGenerator] = None,
                 words_per_sequence: Optional[int] = None,
                 seed: Optional[int] = 2010):
        if not isinstance(protected_fifo.circuit, SyncFIFO):
            raise TypeError(
                "FIFOTestbench requires a ProtectedDesign wrapping a SyncFIFO")
        self.dut_design = protected_fifo
        self.dut: SyncFIFO = protected_fifo.circuit
        self.reference = (reference_fifo if reference_fifo is not None
                          else SyncFIFO(self.dut.width, self.dut.depth,
                                        name=f"{self.dut.name}_ref"))
        if (self.reference.width != self.dut.width
                or self.reference.depth != self.dut.depth):
            raise ValueError(
                "reference FIFO must have the same geometry as the DUT")
        self.stimulus = (stimulus if stimulus is not None
                         else StimulusGenerator(self.dut.width, seed=seed))
        self.words_per_sequence = (words_per_sequence
                                   if words_per_sequence is not None
                                   else max(1, self.dut.depth // 2))
        self.comparator = Comparator()

    # ------------------------------------------------------------------
    def run_sequence(self, injection: Optional[ErrorPattern] = None,
                     inject_phase: str = "sleep") -> TestSequenceResult:
        """Run one five-stage test sequence with optional injection."""
        # Stage 1: reset both FIFOs to the same state.
        self.dut.reset()
        self.reference.reset()
        # Stage 2: write the same random data to both.
        words = self.stimulus.burst(self.words_per_sequence)
        for word in words:
            self.dut.push(word)
            self.reference.push(list(word))
        # Stages 3 and 4: sleep, (inject), wake, decode.
        cycle = self.dut_design.sleep_wake_cycle(
            injection=injection, inject_phase=inject_phase)
        # Stage 5: read both FIFOs and compare.
        comparison = self.comparator.compare(self.dut, self.reference)
        return TestSequenceResult(cycle=cycle, comparison=comparison,
                                  words_written=len(words))

    def run_sequences(self, injections: Sequence[Optional[ErrorPattern]],
                      inject_phase: str = "sleep"
                      ) -> Sequence[TestSequenceResult]:
        """Run one sequence per entry of ``injections``."""
        return [self.run_sequence(injection, inject_phase)
                for injection in injections]


__all__ = ["FIFOTestbench", "TestSequenceResult"]
