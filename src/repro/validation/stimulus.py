"""Random stimulus generation for the validation test bench.

The "Stimulus" block of the paper's Fig. 8 "generates and writes random
data to both FIFO_A and FIFO_B".  :class:`StimulusGenerator` produces
the same reproducible word streams for both FIFOs from a seeded
generator so campaigns can be replayed bit-exactly.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional


class StimulusGenerator:
    """Reproducible random data words.

    Parameters
    ----------
    width:
        Word width in bits.
    seed:
        Seed of the underlying generator; identical seeds yield
        identical streams.
    """

    def __init__(self, width: int = 32, seed: Optional[int] = None):
        if width <= 0:
            raise ValueError("word width must be positive")
        self.width = width
        self.seed = seed
        self._rng = random.Random(seed)

    def next_word(self) -> List[int]:
        """Generate one random word as a list of bits (LSB first)."""
        value = self._rng.getrandbits(self.width)
        return [(value >> i) & 1 for i in range(self.width)]

    def next_int(self) -> int:
        """Generate one random word as an integer."""
        return self._rng.getrandbits(self.width)

    def words(self, count: int) -> Iterator[List[int]]:
        """Generate ``count`` random words."""
        if count < 0:
            raise ValueError("word count cannot be negative")
        for _ in range(count):
            yield self.next_word()

    def burst(self, count: int) -> List[List[int]]:
        """Generate a list of ``count`` random words."""
        return [self.next_word() for _ in range(count)]

    def reset(self, seed: Optional[int] = None) -> None:
        """Restart the stream (optionally with a new seed)."""
        if seed is not None:
            self.seed = seed
        self._rng = random.Random(self.seed)


__all__ = ["StimulusGenerator"]
