"""Functional-verification test bench (paper Fig. 8).

The paper validates the methodology on an FPGA with a five-component
test bench: the protected FIFO plus error injector (FIFO_A), an
error-free reference FIFO (FIFO_B), a random stimulus generator, a
comparator and an event counter.  This package reproduces that test
bench in software:

* :mod:`repro.validation.stimulus` -- reproducible random write data;
* :mod:`repro.validation.comparator` -- drains both FIFOs and compares;
* :mod:`repro.validation.testbench` -- the five-stage test sequence
  (reset, write, sleep, wake, read/compare) around a
  :class:`~repro.core.protected.ProtectedDesign`;
* :mod:`repro.validation.campaign` -- the single-error and
  multiple-error campaigns of Section IV.
"""

from repro.validation.stimulus import StimulusGenerator
from repro.validation.comparator import Comparator, ComparisonResult
from repro.validation.testbench import FIFOTestbench, TestSequenceResult
from repro.validation.campaign import (
    ValidationCampaign,
    CampaignResult,
    run_single_error_campaign,
    run_multiple_error_campaign,
    run_sharded_campaign,
    run_sharded_single_error_campaign,
    run_sharded_multiple_error_campaign,
)

__all__ = [
    "StimulusGenerator",
    "Comparator",
    "ComparisonResult",
    "FIFOTestbench",
    "TestSequenceResult",
    "ValidationCampaign",
    "CampaignResult",
    "run_single_error_campaign",
    "run_multiple_error_campaign",
    "run_sharded_campaign",
    "run_sharded_single_error_campaign",
    "run_sharded_multiple_error_campaign",
]
