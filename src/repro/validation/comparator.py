"""Output comparator of the validation test bench.

The "Comparator" of the paper's Fig. 8 "reads the data from both FIFO_A
and FIFO_B and compares them"; its mismatch reports are the ground
truth against which the monitor's own error reports are judged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.circuit.fifo import SyncFIFO


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of draining and comparing the two FIFOs.

    Attributes
    ----------
    words_compared:
        Number of word pairs read from the two FIFOs.
    mismatched_words:
        Indices (in read order) of words that differed.
    bit_mismatches:
        Total number of differing bits across all words.
    structural_mismatch:
        True when the two FIFOs disagreed about how many words they
        held (occupancy corruption, e.g. a flipped pointer bit).
    """

    words_compared: int
    mismatched_words: Tuple[int, ...] = field(default_factory=tuple)
    bit_mismatches: int = 0
    structural_mismatch: bool = False

    @property
    def match(self) -> bool:
        """True when the FIFOs agreed completely."""
        return not self.mismatched_words and not self.structural_mismatch


class Comparator:
    """Drains a device-under-test FIFO and a reference FIFO in lock step."""

    def __init__(self) -> None:
        self._history: List[ComparisonResult] = []

    @property
    def history(self) -> List[ComparisonResult]:
        """All comparisons performed so far."""
        return list(self._history)

    def compare(self, dut: SyncFIFO, reference: SyncFIFO,
                max_words: Optional[int] = None) -> ComparisonResult:
        """Pop words from both FIFOs until both are empty and compare.

        Occupancy disagreement is reported as a structural mismatch;
        word contents are compared bit by bit.
        """
        mismatched: List[int] = []
        bit_mismatches = 0
        structural = dut.occupancy != reference.occupancy
        index = 0
        while True:
            if max_words is not None and index >= max_words:
                break
            dut_empty = dut.is_empty
            ref_empty = reference.is_empty
            if dut_empty and ref_empty:
                break
            if dut_empty != ref_empty:
                structural = True
                # Drain whichever side still has data so the next test
                # sequence starts clean.
                side = reference if dut_empty else dut
                while not side.is_empty:
                    side.pop()
                break
            dut_word = dut.pop()
            ref_word = reference.pop()
            if dut_word is None or ref_word is None:
                structural = True
                break
            diff = sum(1 for a, b in zip(dut_word, ref_word) if a != b)
            if diff:
                mismatched.append(index)
                bit_mismatches += diff
            index += 1
        result = ComparisonResult(
            words_compared=index,
            mismatched_words=tuple(mismatched),
            bit_mismatches=bit_mismatches,
            structural_mismatch=structural)
        self._history.append(result)
        return result


__all__ = ["Comparator", "ComparisonResult"]
