"""Error-injection campaigns (paper Section IV).

Two campaigns are reported in the paper, each over a large number of
test sequences (10^8 on the FPGA):

* **single-error campaign** -- one random flip per sequence; every error
  was detected and corrected, so FIFO_A reported nothing and the
  comparator saw no mismatch;
* **multiple-error campaign** -- clustered multi-bit bursts per
  sequence; none were corrected (the bursts defeat the Hamming code)
  but every one was detected, as confirmed by the comparator.

:class:`ValidationCampaign` runs either campaign (or a custom one) over
a :class:`~repro.validation.testbench.FIFOTestbench` with configurable
sequence counts, and aggregates the results into the same statistics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.faults.campaign import CampaignStats, InjectionRecord
from repro.faults.patterns import (
    ErrorPattern,
    burst_error_pattern,
    multi_error_pattern,
    single_error_pattern,
)
from repro.validation.testbench import FIFOTestbench, TestSequenceResult

PatternFactory = Callable[[random.Random], Optional[ErrorPattern]]


@dataclass
class CampaignResult:
    """Aggregated outcome of a validation campaign.

    Wraps the generic :class:`~repro.faults.campaign.CampaignStats`
    with the test-bench-specific counters of the paper's Fig. 8
    ("Counter" block): errors reported by FIFO_A and mismatches reported
    by the comparator.
    """

    stats: CampaignStats = field(default_factory=CampaignStats)
    sequences: List[TestSequenceResult] = field(default_factory=list)

    def add(self, result: TestSequenceResult) -> None:
        """Record one test sequence."""
        self.sequences.append(result)
        self.stats.add(InjectionRecord(
            injected=result.cycle.injected_errors,
            detected=result.cycle.detected,
            corrected=(result.cycle.injected_errors > 0
                       and result.cycle.state_intact),
            state_intact=result.cycle.state_intact,
            residual_errors=result.cycle.residual_errors))

    # -- Fig. 8 counters -------------------------------------------------
    @property
    def errors_reported_by_dut(self) -> int:
        """Sequences in which FIFO_A's monitor reported an error."""
        return sum(1 for s in self.sequences if s.error_reported)

    @property
    def mismatches_reported_by_comparator(self) -> int:
        """Sequences in which the comparator found a data mismatch."""
        return sum(1 for s in self.sequences if s.mismatch_reported)

    @property
    def inconsistent_sequences(self) -> int:
        """Sequences where monitor verdict and comparator disagree."""
        return sum(1 for s in self.sequences if not s.outcome_consistent)

    def summary(self) -> str:
        """Human-readable campaign summary."""
        lines = [
            self.stats.summary(),
            f"errors reported by DUT   : {self.errors_reported_by_dut}",
            f"comparator mismatches    : {self.mismatches_reported_by_comparator}",
            f"inconsistent sequences   : {self.inconsistent_sequences}",
        ]
        return "\n".join(lines)


class ValidationCampaign:
    """Runs repeated test sequences with a configurable error pattern.

    Parameters
    ----------
    testbench:
        The FIFO test bench to drive.
    pattern_factory:
        Called once per sequence with the campaign RNG; returns the
        error pattern to inject (or None for a clean sequence).
    seed:
        Seed of the campaign RNG (pattern placement).
    engine:
        Optional simulation-engine override used while this campaign
        runs: ``"packed"`` selects the bit-exact packed-integer fast
        path of :mod:`repro.fastpath` (the natural choice for large
        campaigns), ``"reference"`` the bit-serial models.  ``None``
        keeps the design's current engine.  The design's own engine
        setting is restored when :meth:`run` returns.
    """

    def __init__(self, testbench: FIFOTestbench,
                 pattern_factory: PatternFactory,
                 seed: Optional[int] = 20100308,
                 engine: Optional[str] = None):
        self.testbench = testbench
        self.pattern_factory = pattern_factory
        self._rng = random.Random(seed)
        if engine is not None:
            # Validate eagerly so a typo fails at construction time.
            testbench.dut_design._check_engine(engine)
        self.engine = engine

    def run(self, num_sequences: int,
            inject_phase: str = "sleep") -> CampaignResult:
        """Run ``num_sequences`` test sequences and aggregate the outcome."""
        if num_sequences <= 0:
            raise ValueError("the campaign needs at least one sequence")
        design = self.testbench.dut_design
        previous_engine = design.engine
        if self.engine is not None:
            design.set_engine(self.engine)
        try:
            result = CampaignResult()
            for _ in range(num_sequences):
                pattern = self.pattern_factory(self._rng)
                sequence = self.testbench.run_sequence(pattern, inject_phase)
                result.add(sequence)
            return result
        finally:
            design.set_engine(previous_engine)


def run_single_error_campaign(testbench: FIFOTestbench, num_sequences: int,
                              seed: Optional[int] = 20100308,
                              inject_phase: str = "sleep",
                              engine: Optional[str] = None) -> CampaignResult:
    """The paper's first experiment: one random error per sequence."""
    design = testbench.dut_design

    def factory(rng: random.Random) -> ErrorPattern:
        return single_error_pattern(design.num_chains, design.chain_length,
                                    rng)

    campaign = ValidationCampaign(testbench, factory, seed=seed,
                                  engine=engine)
    return campaign.run(num_sequences, inject_phase=inject_phase)


def run_multiple_error_campaign(testbench: FIFOTestbench, num_sequences: int,
                                burst_size: int = 4,
                                clustered: bool = True,
                                seed: Optional[int] = 20100308,
                                inject_phase: str = "sleep",
                                engine: Optional[str] = None
                                ) -> CampaignResult:
    """The paper's second experiment: clustered multi-bit errors.

    With ``clustered=True`` the injected errors form a tight burst
    (Fig. 7(b)); with ``clustered=False`` they are spread uniformly,
    which is the regime in which a Hamming code still corrects most of
    them (compare the paper's Fig. 10).
    """
    design = testbench.dut_design

    def factory(rng: random.Random) -> ErrorPattern:
        if clustered:
            return burst_error_pattern(design.num_chains,
                                       design.chain_length, burst_size, rng)
        return multi_error_pattern(design.num_chains, design.chain_length,
                                   burst_size, rng)

    campaign = ValidationCampaign(testbench, factory, seed=seed,
                                  engine=engine)
    return campaign.run(num_sequences, inject_phase=inject_phase)


__all__ = [
    "CampaignResult",
    "ValidationCampaign",
    "run_single_error_campaign",
    "run_multiple_error_campaign",
]
