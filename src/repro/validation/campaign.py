"""Error-injection campaigns (paper Section IV).

Two campaigns are reported in the paper, each over a large number of
test sequences (10^8 on the FPGA):

* **single-error campaign** -- one random flip per sequence; every error
  was detected and corrected, so FIFO_A reported nothing and the
  comparator saw no mismatch;
* **multiple-error campaign** -- clustered multi-bit bursts per
  sequence; none were corrected (the bursts defeat the Hamming code)
  but every one was detected, as confirmed by the comparator.

:class:`ValidationCampaign` runs either campaign (or a custom one) over
a :class:`~repro.validation.testbench.FIFOTestbench` in a single
process; the ``run_sharded_*`` entry points fan the same campaigns out
over the :mod:`repro.campaigns` subsystem -- multiprocessing workers,
O(1)-memory streaming statistics, checkpoint/resume -- which is the
path toward the paper's 10^8-sequence scale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

from repro.campaigns.runner import ShardedCampaignRunner
from repro.campaigns.stats import StreamingCampaignResult
from repro.campaigns.tasks import FIFOValidationCampaignTask
from repro.faults.campaign import CampaignStats
from repro.faults.patterns import (
    ErrorPattern,
    burst_error_pattern,
    multi_error_pattern,
    single_error_pattern,
)
from repro.validation.testbench import FIFOTestbench, TestSequenceResult

PatternFactory = Callable[[random.Random], Optional[ErrorPattern]]


@dataclass
class CampaignResult(StreamingCampaignResult):
    """Aggregated outcome of a single-process validation campaign.

    Extends the streaming counters of
    :class:`~repro.campaigns.stats.StreamingCampaignResult` (the
    Fig. 8 "Counter" block: errors reported by FIFO_A, comparator
    mismatches) with the per-sequence
    :class:`~repro.validation.testbench.TestSequenceResult` log, which
    single-process campaigns keep for detailed inspection.  Sharded
    campaigns return the plain streaming result instead -- at 10^6+
    sequences the log is exactly the memory bound this subsystem
    removes.
    """

    stats: CampaignStats = field(default_factory=CampaignStats)
    sequences: List[TestSequenceResult] = field(default_factory=list)

    def add(self, result: TestSequenceResult) -> None:
        """Record one test sequence."""
        self.sequences.append(result)
        super().add(result)

    def merge(self, other: StreamingCampaignResult) -> "CampaignResult":
        """Merge counters and, for a full result, the sequence log.

        Accepts another :class:`CampaignResult` (counters plus the
        per-sequence log) or a plain
        :class:`~repro.campaigns.stats.StreamingCampaignResult`
        (counters only, e.g. a sharded shard).  Anything else raises:
        an unrelated object with compatible counter attributes would
        previously merge its counters and silently drop whatever its
        ``sequences`` attribute -- if any -- meant.
        """
        if not isinstance(other, StreamingCampaignResult):
            raise TypeError(
                f"cannot merge {type(other).__name__} into "
                f"CampaignResult; expected CampaignResult or "
                f"StreamingCampaignResult")
        super().merge(other)
        if isinstance(other, CampaignResult):
            self.sequences.extend(other.sequences)
        return self

    def to_dict(self):
        """Counter-only dict form; the sequence log is not serialized."""
        return super().to_dict()

    @classmethod
    def from_dict(cls, payload) -> "CampaignResult":
        """Rebuild from :meth:`to_dict` output.

        Only the counters round-trip; ``sequences`` comes back empty
        (checkpoints are deliberately O(1)-sized).
        """
        streamed = StreamingCampaignResult.from_dict(payload)
        return cls(
            stats=CampaignStats.from_dict(streamed.stats.to_dict()),
            errors_reported_by_dut=streamed.errors_reported_by_dut,
            mismatches_reported_by_comparator=(
                streamed.mismatches_reported_by_comparator),
            inconsistent_sequences=streamed.inconsistent_sequences)


class ValidationCampaign:
    """Runs repeated test sequences with a configurable error pattern.

    Parameters
    ----------
    testbench:
        The FIFO test bench to drive.
    pattern_factory:
        Called once per sequence with the campaign RNG; returns the
        error pattern to inject (or None for a clean sequence).
    seed:
        Seed of the campaign RNG (pattern placement).
    engine:
        Optional simulation-engine override used while this campaign
        runs, resolved through the registry of :mod:`repro.engines`:
        ``"packed"`` selects the bit-exact packed-integer fast path
        (the natural choice for large per-sequence campaigns),
        ``"reference"`` the bit-serial models; any third-party
        registered engine is accepted too.  ``None`` keeps the
        design's current engine.  The design's own engine setting is
        restored when :meth:`run` returns.
    """

    def __init__(self, testbench: FIFOTestbench,
                 pattern_factory: PatternFactory,
                 seed: Optional[int] = 20100308,
                 engine: Optional[str] = None):
        self.testbench = testbench
        self.pattern_factory = pattern_factory
        self._rng = random.Random(seed)
        if engine is not None:
            # Validate eagerly so a typo fails at construction time.
            testbench.dut_design.validate_engine(engine)
        self.engine = engine

    def run(self, num_sequences: int,
            inject_phase: str = "sleep") -> CampaignResult:
        """Run ``num_sequences`` test sequences and aggregate the outcome."""
        if num_sequences <= 0:
            raise ValueError("the campaign needs at least one sequence")
        design = self.testbench.dut_design
        previous_engine = design.engine
        if self.engine is not None:
            design.set_engine(self.engine)
        try:
            result = CampaignResult()
            for _ in range(num_sequences):
                pattern = self.pattern_factory(self._rng)
                sequence = self.testbench.run_sequence(pattern, inject_phase)
                result.add(sequence)
            return result
        finally:
            design.set_engine(previous_engine)


def run_single_error_campaign(testbench: FIFOTestbench, num_sequences: int,
                              seed: Optional[int] = 20100308,
                              inject_phase: str = "sleep",
                              engine: Optional[str] = None) -> CampaignResult:
    """The paper's first experiment: one random error per sequence."""
    design = testbench.dut_design

    def factory(rng: random.Random) -> ErrorPattern:
        return single_error_pattern(design.num_chains, design.chain_length,
                                    rng)

    campaign = ValidationCampaign(testbench, factory, seed=seed,
                                  engine=engine)
    return campaign.run(num_sequences, inject_phase=inject_phase)


def run_multiple_error_campaign(testbench: FIFOTestbench, num_sequences: int,
                                burst_size: int = 4,
                                clustered: bool = True,
                                seed: Optional[int] = 20100308,
                                inject_phase: str = "sleep",
                                engine: Optional[str] = None
                                ) -> CampaignResult:
    """The paper's second experiment: clustered multi-bit errors.

    With ``clustered=True`` the injected errors form a tight burst
    (Fig. 7(b)); with ``clustered=False`` they are spread uniformly,
    which is the regime in which a Hamming code still corrects most of
    them (compare the paper's Fig. 10).
    """
    design = testbench.dut_design

    def factory(rng: random.Random) -> ErrorPattern:
        if clustered:
            return burst_error_pattern(design.num_chains,
                                       design.chain_length, burst_size, rng)
        return multi_error_pattern(design.num_chains, design.chain_length,
                                   burst_size, rng)

    campaign = ValidationCampaign(testbench, factory, seed=seed,
                                  engine=engine)
    return campaign.run(num_sequences, inject_phase=inject_phase)


# ----------------------------------------------------------------------
# Sharded entry points (the scaling path: repro.campaigns)
# ----------------------------------------------------------------------
def run_sharded_campaign(task: FIFOValidationCampaignTask,
                         num_sequences: int,
                         seed: Optional[Union[int, str]] = 20100308,
                         num_workers: int = 1,
                         chunk_size: Optional[int] = None,
                         checkpoint_path: Optional[str] = None,
                         progress_callback=None,
                         executor=None,
                         save_interval: int = 1,
                         scheduler=None) -> StreamingCampaignResult:
    """Run a validation campaign task through the sharded runner.

    The result is bit-identical for any ``num_workers`` and any
    ``executor`` (``"serial"``, ``"thread"``, ``"process"``, the warm
    persistent kinds ``"thread-warm"``/``"process-warm"``, or a
    :class:`~repro.campaigns.executors.ChunkExecutor` instance --
    pass a pre-built
    :class:`~repro.campaigns.executors.PersistentProcessExecutor` to
    serve many calls from one hot pool; the caller then owns its
    ``close()``) given
    the same ``(seed, num_sequences, chunk_size)``; see
    :class:`~repro.campaigns.runner.ShardedCampaignRunner` for the
    checkpoint/resume (``save_interval`` selects the flush policy) and
    progress semantics.  Passing a
    :class:`~repro.campaigns.scheduler.CampaignScheduler` as
    ``scheduler`` routes the campaign through its shared executor and
    result cache instead (``num_workers``/``executor`` are then the
    scheduler's business).  Note the sharded campaigns build their
    test benches per chunk from seed-split streams, so their
    statistics are not sequence-for-sequence identical to a
    single-process :class:`ValidationCampaign` run -- the two are
    statistically equivalent samplings of the same experiment.
    """
    if scheduler is not None:
        job = scheduler.submit(
            task, num_sequences, seed=seed, chunk_size=chunk_size,
            checkpoint_path=checkpoint_path, save_interval=save_interval,
            progress_callback=progress_callback)
        scheduler.run()
        return job.result
    runner = ShardedCampaignRunner(
        task, num_sequences, seed=seed, num_workers=num_workers,
        chunk_size=chunk_size, checkpoint_path=checkpoint_path,
        progress_callback=progress_callback, executor=executor,
        save_interval=save_interval)
    return runner.run()


def run_sharded_single_error_campaign(
        num_sequences: int,
        width: int = 32, depth: int = 32,
        codes=("hamming(7,4)", "crc16"),
        num_chains: int = 80,
        seed: Optional[Union[int, str]] = 20100308,
        inject_phase: str = "sleep",
        engine: Optional[str] = None,
        words_per_sequence: Optional[int] = None,
        batch_size: Optional[int] = None,
        sampler: str = "scalar",
        summary_path: str = "auto",
        num_workers: int = 1,
        chunk_size: Optional[int] = None,
        checkpoint_path: Optional[str] = None,
        progress_callback=None,
        executor=None,
        save_interval: int = 1,
        scheduler=None) -> StreamingCampaignResult:
    """Sharded form of :func:`run_single_error_campaign`.

    ``batch_size`` (with ``engine="batched"`` for the fast path) runs
    each chunk's sequences in bit-plane batches;
    ``sampler="array"`` (with a summary-capable engine such as
    ``"simd"`` for the columnar fast path) additionally vectorises the
    pattern sampling and counter ingestion, and ``summary_path`` forces
    the sparse-delta or dense summary implementation (default
    ``"auto"``: density-crossover selection); see
    :class:`~repro.campaigns.tasks.FIFOValidationCampaignTask`.
    """
    task = FIFOValidationCampaignTask(
        width=width, depth=depth, codes=codes, num_chains=num_chains,
        pattern="single", inject_phase=inject_phase, engine=engine,
        words_per_sequence=words_per_sequence, batch_size=batch_size,
        sampler=sampler, summary_path=summary_path)
    return run_sharded_campaign(task, num_sequences, seed=seed,
                                num_workers=num_workers,
                                chunk_size=chunk_size,
                                checkpoint_path=checkpoint_path,
                                progress_callback=progress_callback,
                                executor=executor,
                                save_interval=save_interval,
                                scheduler=scheduler)


def run_sharded_multiple_error_campaign(
        num_sequences: int,
        burst_size: int = 4,
        clustered: bool = True,
        width: int = 32, depth: int = 32,
        codes=("hamming(7,4)", "crc16"),
        num_chains: int = 80,
        seed: Optional[Union[int, str]] = 20100308,
        inject_phase: str = "sleep",
        engine: Optional[str] = None,
        words_per_sequence: Optional[int] = None,
        batch_size: Optional[int] = None,
        sampler: str = "scalar",
        summary_path: str = "auto",
        num_workers: int = 1,
        chunk_size: Optional[int] = None,
        checkpoint_path: Optional[str] = None,
        progress_callback=None,
        executor=None,
        save_interval: int = 1,
        scheduler=None) -> StreamingCampaignResult:
    """Sharded form of :func:`run_multiple_error_campaign`.

    ``batch_size`` (with ``engine="batched"`` for the fast path) runs
    each chunk's sequences in bit-plane batches;
    ``sampler="array"`` (with a summary-capable engine such as
    ``"simd"`` for the columnar fast path) additionally vectorises the
    pattern sampling and counter ingestion, and ``summary_path`` forces
    the sparse-delta or dense summary implementation (default
    ``"auto"``: density-crossover selection); see
    :class:`~repro.campaigns.tasks.FIFOValidationCampaignTask`.
    """
    task = FIFOValidationCampaignTask(
        width=width, depth=depth, codes=codes, num_chains=num_chains,
        pattern="burst" if clustered else "multiple",
        burst_size=burst_size, inject_phase=inject_phase, engine=engine,
        words_per_sequence=words_per_sequence, batch_size=batch_size,
        sampler=sampler, summary_path=summary_path)
    return run_sharded_campaign(task, num_sequences, seed=seed,
                                num_workers=num_workers,
                                chunk_size=chunk_size,
                                checkpoint_path=checkpoint_path,
                                progress_callback=progress_callback,
                                executor=executor,
                                save_interval=save_interval,
                                scheduler=scheduler)


__all__ = [
    "CampaignResult",
    "ValidationCampaign",
    "run_single_error_campaign",
    "run_multiple_error_campaign",
    "run_sharded_campaign",
    "run_sharded_single_error_campaign",
    "run_sharded_multiple_error_campaign",
]
