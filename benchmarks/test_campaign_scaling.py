"""Benchmark E9: sharded campaign throughput, scaling and checkpoint IO.

The paper's validation campaigns run 10^8 test sequences on the FPGA;
the sharded runner of :mod:`repro.campaigns` is the software path
toward that scale.  This benchmark runs the paper's single-error
campaign (32x32 FIFO, 80 chains, Hamming(7,4) + CRC-16, packed engine)
through the runner at several worker counts, prints the throughput
table, and checks the two properties the subsystem guarantees:

* the merged statistics are bit-identical for every worker count;
* the result is a flat counter object -- resident statistics memory is
  O(1) in the sequence count, so only wall-clock time stands between a
  CI-sized run and the paper's 10^8 (set ``REPRO_BENCH_SEQUENCES`` to
  scale up, e.g. to the 10^6 acceptance campaign).
"""

import json
import time

import pytest

from benchmarks.conftest import bench_sequences, print_section, record_bench
from repro.analysis import paper_data
from repro.analysis.tables import format_validation_summary
from repro.analysis.tradeoff import section4_validation_rows
from repro.campaigns.runner import ShardedCampaignRunner
from repro.campaigns.stats import StreamingCampaignResult
from repro.campaigns.tasks import FIFOValidationCampaignTask

WORKER_SWEEP = (1, 2, 4)


def _paper_task():
    return FIFOValidationCampaignTask(
        width=32, depth=32, codes=("hamming(7,4)", "crc16"), num_chains=80,
        pattern="single", engine="packed", words_per_sequence=16)


@pytest.mark.benchmark(group="campaign-scaling")
def test_sharded_campaign_scaling(benchmark):
    sequences = bench_sequences(48)
    chunk_size = max(1, sequences // 16)
    task = _paper_task()

    timings = {}
    results = {}
    for workers in WORKER_SWEEP:
        start = time.perf_counter()
        results[workers] = ShardedCampaignRunner(
            task, sequences, seed=20100308, chunk_size=chunk_size,
            num_workers=workers).run()
        timings[workers] = time.perf_counter() - start
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # Determinism: bit-identical statistics at every worker count.
    assert results[2] == results[1]
    assert results[4] == results[1]

    # The paper's single-error headline holds at scale.
    stats = results[1].stats
    assert stats.num_sequences == sequences
    assert stats.detection_rate() == 1.0
    assert stats.correction_rate() == 1.0
    assert results[1].mismatches_reported_by_comparator == 0

    # O(1) statistics memory: the result is a flat counter object whose
    # serialized size is independent of the campaign length.
    assert isinstance(results[1], StreamingCampaignResult)
    assert not hasattr(results[1], "sequences")
    small = ShardedCampaignRunner(task, max(1, sequences // 4),
                                  seed=20100308,
                                  chunk_size=chunk_size).run()
    assert len(json.dumps(results[1].to_dict())) == pytest.approx(
        len(json.dumps(small.to_dict())), rel=0.1)

    base = timings[1]
    lines = ["workers  seq/s      speedup"]
    for workers in WORKER_SWEEP:
        rate = sequences / timings[workers]
        lines.append(f"{workers:>7}  {rate:>9.1f}  {base / timings[workers]:>6.2f}x")
    print_section(
        f"Campaign scaling -- sharded single-error campaign "
        f"({sequences} sequences, chunk={chunk_size}, packed engine)",
        "\n".join(lines))


@pytest.mark.benchmark(group="campaign-scaling")
def test_section4_summary_via_sharded_runner(benchmark):
    sequences = bench_sequences(24)
    rows = benchmark.pedantic(
        lambda: section4_validation_rows(num_sequences=sequences,
                                         num_workers=2),
        rounds=1, iterations=1)

    single = rows["single_error"].stats
    multiple = rows["multiple_error"].stats
    assert single.detection_rate() == 1.0
    assert single.correction_rate() == 1.0
    assert multiple.detection_rate() == 1.0
    assert multiple.correction_rate() < 0.5
    assert multiple.silent_corruptions == 0

    print_section(
        f"Section IV campaign headlines ({sequences} sequences each, "
        f"2 workers)",
        format_validation_summary(rows, paper_data.VALIDATION_SUMMARY))


@pytest.mark.benchmark(group="campaign-scaling")
def test_campaign_checkpoint_overhead(benchmark, tmp_path):
    """Checkpointed vs uncheckpointed wall time, per-chunk vs interval.

    The historical policy rewrote the whole growing JSON payload after
    every chunk -- O(chunks^2) bytes over a campaign.  The
    :class:`~repro.campaigns.checkpoints.CheckpointStore` interval
    policy amortises that by ``save_interval``; this benchmark pins
    the win on a many-chunk campaign of deliberately tiny chunks (the
    regime where checkpoint IO, not simulation, dominates) and records
    it as the committed ``campaign_checkpoint_overhead`` entry.
    """
    from repro.analysis.correction_capability import (
        CorrectionCapabilityTask,
    )

    chunks = bench_sequences(512)
    interval = max(1, chunks // 8)
    task = CorrectionCapabilityTask(code_n=7, code_k=4, num_bits=100,
                                    num_errors=1, engine="packed")

    def run(path=None, save_interval=1):
        start = time.perf_counter()
        result = ShardedCampaignRunner(
            task, chunks, seed=20100308, chunk_size=1,
            checkpoint_path=path, save_interval=save_interval).run()
        elapsed = time.perf_counter() - start
        assert result.sequences == chunks
        return result, elapsed

    baseline, uncheckpointed_s = run()
    per_chunk, per_chunk_s = run(str(tmp_path / "per_chunk.json"), 1)
    interval_result, interval_s = run(str(tmp_path / "interval.json"),
                                      interval)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # The flush policy must never change the statistics.
    assert per_chunk == baseline
    assert interval_result == baseline

    results = {
        "chunks": chunks,
        "save_interval": interval,
        "uncheckpointed_s": uncheckpointed_s,
        "per_chunk_checkpoint_s": per_chunk_s,
        "interval_checkpoint_s": interval_s,
        "per_chunk_overhead_x": per_chunk_s / uncheckpointed_s,
        "interval_overhead_x": interval_s / uncheckpointed_s,
        "interval_speedup_vs_per_chunk": per_chunk_s / interval_s,
        "floors": {
            # The interval policy must stay decisively cheaper than
            # write-per-chunk in the IO-bound regime (locally ~38x;
            # the floor is deliberately loose for noisy CI boxes).
            "interval_speedup_vs_per_chunk": 2.0,
        },
    }
    path = record_bench("campaigns", results,
                        section="campaign_checkpoint_overhead")

    print_section(
        f"Campaign checkpoint overhead ({chunks} chunks of 1 sequence, "
        f"save_interval={interval})",
        "\n".join([
            f"uncheckpointed        : {uncheckpointed_s * 1e3:8.1f} ms",
            f"checkpoint every chunk: {per_chunk_s * 1e3:8.1f} ms "
            f"({results['per_chunk_overhead_x']:.2f}x)",
            f"interval checkpoint   : {interval_s * 1e3:8.1f} ms "
            f"({results['interval_overhead_x']:.2f}x, "
            f"{results['interval_speedup_vs_per_chunk']:.2f}x less "
            f"IO time than per-chunk)",
            f"results written to {path}",
        ]))
