"""Benchmark E9: the scan-chain reconfiguration speed-up (Section III).

The paper's worked example: 128 flip-flops in 4 chains need 32 cycles
per encode/decode pass; re-ordering them into 16 chains feeding 4
parallel Hamming(7,4) monitoring blocks cuts that to 8 cycles -- a 4x
speed-up -- while manufacturing test still sees 4 ports scanning 32
bits each (Fig. 5(b)).

The benchmark also measures the wall-clock cost of simulated encode
passes at both configurations, confirming the cycle-count model at the
behavioural level.
"""

import pytest

from benchmarks.conftest import print_section
from repro.analysis import paper_data
from repro.circuit.generators import make_random_state_circuit
from repro.core.protected import ProtectedDesign
from repro.core.scan_config import ScanChainConfig


@pytest.mark.benchmark(group="scan-config")
def test_section3_speedup_example(benchmark):
    example = paper_data.SCAN_SPEEDUP_EXAMPLE
    baseline = ScanChainConfig(num_registers=example["num_registers"],
                               num_chains=example["baseline_chains"],
                               monitor_width=4, test_width=4)
    reconfigured = ScanChainConfig(num_registers=example["num_registers"],
                                   num_chains=example["reconfigured_chains"],
                                   monitor_width=4, test_width=4)

    assert baseline.encode_cycles == example["baseline_cycles"]
    assert reconfigured.encode_cycles == example["reconfigured_cycles"]
    assert reconfigured.speedup_over(baseline) == pytest.approx(
        example["speedup"])
    # Test mode is unaffected: 4 ports, 32-bit-long concatenated chains.
    assert reconfigured.test_cycles == baseline.encode_cycles

    # Behavioural confirmation: run real encode passes on both
    # configurations and compare cycle counts.
    circuit = make_random_state_circuit(example["num_registers"], seed=1)
    design_4 = ProtectedDesign(circuit, codes="hamming(7,4)", num_chains=4)
    design_16 = ProtectedDesign(circuit, codes="hamming(7,4)", num_chains=16)

    def encode_both():
        cycles_4 = design_4.monitor_bank.encode_pass(design_4.chains)
        cycles_16 = design_16.monitor_bank.encode_pass(design_16.chains)
        return cycles_4, cycles_16

    cycles_4, cycles_16 = benchmark(encode_both)
    assert cycles_4 == 32
    assert cycles_16 == 8

    print_section(
        "Section III -- scan-chain reconfiguration speed-up",
        f"128 flops, 4 chains : {cycles_4} cycles/pass "
        f"({baseline.encode_latency_ns:.0f} ns at 100 MHz)\n"
        f"128 flops, 16 chains: {cycles_16} cycles/pass "
        f"({reconfigured.encode_latency_ns:.0f} ns at 100 MHz)\n"
        f"speed-up            : {cycles_4 / cycles_16:.1f}x "
        f"(paper: {example['speedup']:.1f}x)\n"
        f"test-mode cycles    : {reconfigured.test_cycles} "
        f"(unchanged by the reconfiguration)")


@pytest.mark.benchmark(group="scan-config")
def test_paper_fifo_latency_identity(benchmark, paper_fifo):
    """Latency = l x T across every Table I/II configuration."""

    def compute():
        configs = [ScanChainConfig.paper_fifo(num_chains=w)
                   for w in (4, 8, 16, 40, 80)]
        return [(c.num_chains, c.chain_length, c.encode_latency_ns)
                for c in configs]

    rows = benchmark(compute)
    expected = {4: 2600, 8: 1300, 16: 650, 40: 260, 80: 130}
    for chains, length, latency in rows:
        assert latency == pytest.approx(expected[chains])
        assert length * 10.0 == pytest.approx(latency)
