"""Ablation benchmark: LFSR-uniform injection vs droop-driven upsets.

The paper validates with LFSR-driven injection (uniform random
locations, a fixed number of errors per sequence).  The physical
failure mechanism, however, produces a *random number* of upsets per
wake-up -- zero on most wake-ups, several when the droop approaches the
latch margin -- and those upsets favour latches with weak margins.

This ablation compares the two fault sources on the same protected
design and checks that the paper's conclusions are not an artefact of
the injector:

* under both models, every corrupted wake-up is detected (no silent
  corruption);
* single-upset wake-ups are repaired under both models;
* the droop-driven model produces a wider spread of error
  multiplicities, including clean wake-ups, which the uniform injector
  never does.
"""

import random

import pytest

from benchmarks.conftest import bench_sequences, print_section
from repro.circuit.generators import make_random_state_circuit
from repro.core.protected import ProtectedDesign
from repro.faults.patterns import single_error_pattern
from repro.power.retention import RetentionUpsetModel


@pytest.mark.benchmark(group="ablation")
def test_lfsr_vs_droop_fault_models(benchmark):
    sequences = bench_sequences(20)

    def run():
        # Uniform LFSR-style injection: exactly one error per sequence.
        lfsr_circuit = make_random_state_circuit(256, seed=13)
        lfsr_design = ProtectedDesign(lfsr_circuit,
                                      codes=["hamming(7,4)", "crc16"],
                                      num_chains=16)
        rng = random.Random(17)
        lfsr_outcomes = []
        for _ in range(sequences):
            pattern = single_error_pattern(16, lfsr_design.chain_length, rng)
            lfsr_outcomes.append(
                lfsr_design.sleep_wake_cycle(injection=pattern))

        # Droop-driven upsets: marginal latches, moderate droop.
        droop_circuit = make_random_state_circuit(256, seed=13)
        droop_design = ProtectedDesign(
            droop_circuit, codes=["hamming(7,4)", "crc16"], num_chains=16,
            upset_model=RetentionUpsetModel(nominal_margin=0.16, slope=0.02,
                                            seed=23))
        droop_outcomes = [droop_design.sleep_wake_cycle()
                          for _ in range(sequences)]
        return lfsr_outcomes, droop_outcomes

    lfsr_outcomes, droop_outcomes = benchmark.pedantic(run, rounds=1,
                                                       iterations=1)

    # Uniform injection: always exactly one error, always repaired.
    assert all(o.injected_errors == 1 for o in lfsr_outcomes)
    assert all(o.detected and o.state_intact for o in lfsr_outcomes)

    # Droop model: multiplicity varies; no corrupted wake-up is silent,
    # and single-upset wake-ups are repaired.
    multiplicities = [o.injected_errors for o in droop_outcomes]
    assert len(set(multiplicities)) > 1
    for outcome in droop_outcomes:
        if outcome.injected_errors:
            assert outcome.detected
            assert not outcome.silent_corruption
        if outcome.injected_errors == 1:
            assert outcome.state_intact

    corrupted = sum(1 for o in droop_outcomes if o.injected_errors)
    repaired = sum(1 for o in droop_outcomes
                   if o.injected_errors and o.state_intact)
    print_section(
        "Ablation -- uniform LFSR injection vs droop-driven upsets "
        f"({sequences} sleep/wake cycles each)",
        "\n".join([
            "LFSR model : 1 error per cycle, "
            f"{sum(o.state_intact for o in lfsr_outcomes)}/{sequences} "
            "cycles fully repaired",
            "droop model: error multiplicity per cycle "
            f"min={min(multiplicities)} max={max(multiplicities)}; "
            f"{corrupted} corrupted wake-ups, all detected, "
            f"{repaired} fully repaired",
        ]))
