"""Benchmark: engine throughput -- batched vs packed vs reference.

Acceptance criterion of the engine subsystem: on a 1024-flop, B=256
single-error campaign microbenchmark the bit-plane batched engine must
be at least **5x** faster than the packed engine per sequence, while
remaining bit-exact (equivalence is enforced by ``tests/engines/``;
this benchmark re-checks the outcomes it measures).  The measured
throughputs are written to ``BENCH_engines.json`` so the perf
trajectory is tracked between PRs.

Configuration: 1024 registers balanced into 64 chains of 16 flops,
Hamming(7,4) correction plus CRC-16 verification (the paper's stacked
FPGA configuration scaled to a power-of-two flop count), one random
single-bit error per sequence -- the regime of the paper's first
campaign, where every error is detected and corrected.
"""

import random
import time

import pytest

from benchmarks.conftest import print_section, record_bench
from repro.circuit.generators import make_random_state_circuit
from repro.core.protected import ProtectedDesign
from repro.faults.patterns import single_error_pattern

NUM_FLOPS = 1024
NUM_CHAINS = 64
BATCH = 256
CODES = ["hamming(7,4)", "crc16"]
SPEEDUP_FLOOR = 5.0


def _build(engine):
    circuit = make_random_state_circuit(NUM_FLOPS, seed=1024)
    return ProtectedDesign(circuit, codes=CODES, num_chains=NUM_CHAINS,
                           engine=engine)


def _time(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.benchmark(group="engines")
def test_single_error_campaign_throughput():
    """1024-flop, B=256 single-error campaign: batched >= 5x packed."""
    pattern_rng = random.Random(20100308)
    probe = _build("batched")
    patterns = [single_error_pattern(probe.num_chains, probe.chain_length,
                                     pattern_rng) for _ in range(BATCH)]

    # -- batched engine: one bit-plane pass for the whole batch --------
    design_batched = _build("batched")
    design_batched.sleep_wake_cycle_batch(patterns[:8])  # warm-up
    outcomes_batched = {}

    def batched_run():
        outcomes_batched["out"] = design_batched.sleep_wake_cycle_batch(
            patterns)

    batched_time = _time(batched_run, repeats=3) / BATCH

    # -- packed engine: one scalar cycle per sequence ------------------
    design_packed = _build("packed")
    design_packed.sleep_wake_cycle(injection=patterns[0])  # warm-up
    outcomes_packed = {}

    def packed_run():
        outcomes_packed["out"] = [
            design_packed.sleep_wake_cycle(injection=pattern)
            for pattern in patterns]

    packed_time = _time(packed_run, repeats=2) / BATCH

    # -- reference engine: a handful of sequences, extrapolated --------
    design_reference = _build("reference")
    reference_sample = 2
    design_reference.sleep_wake_cycle(injection=patterns[0])  # warm-up

    def reference_run():
        for pattern in patterns[:reference_sample]:
            design_reference.sleep_wake_cycle(injection=pattern)

    reference_time = _time(reference_run, repeats=2) / reference_sample

    # Bit-exactness of the measured work itself: the batched outcomes
    # must equal the packed ones field for field (and every single
    # error is detected and corrected).
    for outcome_b, outcome_p in zip(outcomes_batched["out"],
                                    outcomes_packed["out"]):
        assert outcome_b.detected and outcome_b.state_intact
        assert (outcome_b.injected_errors, outcome_b.detected,
                outcome_b.corrected_claim, outcome_b.state_intact,
                outcome_b.residual_errors, outcome_b.error_code,
                outcome_b.corrections_applied, outcome_b.reports) == \
            (outcome_p.injected_errors, outcome_p.detected,
             outcome_p.corrected_claim, outcome_p.state_intact,
             outcome_p.residual_errors, outcome_p.error_code,
             outcome_p.corrections_applied, outcome_p.reports)

    speedup_vs_packed = packed_time / batched_time
    speedup_vs_reference = reference_time / batched_time
    record_bench("engines", {
        "microbenchmark": "single_error_campaign",
        "num_flops": NUM_FLOPS,
        "num_chains": NUM_CHAINS,
        "chain_length": probe.chain_length,
        "batch_size": BATCH,
        "codes": CODES,
        "seconds_per_sequence": {
            "reference": reference_time,
            "packed": packed_time,
            "batched": batched_time,
        },
        "sequences_per_second": {
            "reference": 1.0 / reference_time,
            "packed": 1.0 / packed_time,
            "batched": 1.0 / batched_time,
        },
        "batched_speedup_vs_packed": speedup_vs_packed,
        "batched_speedup_vs_reference": speedup_vs_reference,
        "acceptance_floor_vs_packed": SPEEDUP_FLOOR,
    })

    print_section(
        "Engines -- 1024-flop, B=256 single-error campaign",
        f"reference engine : {reference_time * 1e3:9.2f} ms per sequence\n"
        f"packed engine    : {packed_time * 1e6:9.1f} us per sequence\n"
        f"batched engine   : {batched_time * 1e6:9.1f} us per sequence\n"
        f"batched / packed : {speedup_vs_packed:9.1f}x "
        f"(acceptance: >= {SPEEDUP_FLOOR:.0f}x)\n"
        f"batched / ref    : {speedup_vs_reference:9.0f}x")
    assert speedup_vs_packed >= SPEEDUP_FLOOR


@pytest.mark.benchmark(group="engines")
def test_batch_size_scaling():
    """Throughput grows with the batch size (amortisation is real)."""
    rng = random.Random(7)
    design = _build("batched")
    patterns = [single_error_pattern(design.num_chains,
                                     design.chain_length, rng)
                for _ in range(BATCH)]
    design.sleep_wake_cycle_batch(patterns[:4])  # warm-up
    per_sequence = {}
    for batch_size in (1, 16, 256):
        chunk = patterns[:batch_size]
        repeats = max(1, 32 // batch_size)

        def run():
            for _ in range(repeats):
                design.sleep_wake_cycle_batch(chunk)

        per_sequence[batch_size] = _time(run, repeats=2) \
            / (repeats * batch_size)

    print_section(
        "Engines -- batch-size scaling (per-sequence cost)",
        "\n".join(f"B = {b:4d}: {t * 1e6:9.1f} us per sequence"
                  for b, t in per_sequence.items()))
    # B=256 must amortise at least 3x better than B=1 per sequence.
    assert per_sequence[256] * 3 <= per_sequence[1]
