"""Benchmark: engine throughput -- simd vs batched vs packed vs
reference.

Four guarded benchmarks, all recorded (with their acceptance floors)
in ``BENCH_engines.json`` and enforced by the CI regression guard
(``benchmarks/check_regression.py``):

* **single_error_campaign** -- the batch engines' best case: a
  1024-flop, B=256 campaign where each sequence carries one random
  single-bit error.  The bit-plane engine must hold its >= 5x over the
  packed engine, and the SIMD engine must be at least as fast as the
  bit-plane engine (floor 1x) -- vectorised decode must not cost
  anything where the sparse path shines.
* **dense_error_campaign** -- the regime behind the paper's burst and
  droop-storm figures: every sequence carries a dense two-chain burst
  (every scan slice of two adjacent chains corrupted).  Here the
  bit-plane engine degenerates to its per-sequence scalar decoder
  while the SIMD engine stays vectorised: the floor is **10x** at the
  engine level (one encode+decode pass over prepared bit planes) and
  2x at the cycle level (full ``sleep_wake_cycle_batch``, which is
  dominated by the engine-independent outcome bookkeeping both
  engines share).
* **campaign_summary_path** -- end-to-end single-error campaign chunk
  on the paper's 32x32-FIFO configuration: the columnar summary path
  (``sampler="array"``) must hold >= 2x over the batched object path.
* **campaign_delta_path** -- the same campaign with the sparse-delta
  superposition path forced against the dense word-fold summary path:
  >= 2x end to end (the committed measurement is ~4x; the engine pass
  alone is >10x).

Configuration: 1024 registers balanced into 64 chains of 16 flops;
the single-error campaign uses the paper's stacked Hamming(7,4)+CRC-16
FPGA configuration, the dense campaign uses the paper's widest
Table III Hamming member, (63,57), stacked with CRC-16 -- wide
codewords are where the scalar slice decoder is most expensive.
Bit-exactness of the measured work itself is asserted inline (the full
property suites live in ``tests/engines/``).
"""

import random
import time

import pytest

from benchmarks.conftest import print_section, record_bench
from repro.circuit.generators import make_random_state_circuit
from repro.core.protected import ProtectedDesign
from repro.engines.packing import pack_chains, replicate_states
from repro.engines.registry import available_engines, get_engine
from repro.faults.batch import apply_batch_flips, batch_pattern_flips
from repro.faults.patterns import ErrorPattern, single_error_pattern

#: The SIMD engine registers only when numpy is importable (the [simd]
#: extra); on a pure-stdlib install the simd comparisons skip instead
#: of erroring.  Note the regression guard then (correctly) fails on
#: the missing simd metrics -- CI always installs numpy.
SIMD_AVAILABLE = "simd" in available_engines()
requires_simd = pytest.mark.skipif(
    not SIMD_AVAILABLE,
    reason="numpy not installed (the [simd] packaging extra)")

NUM_FLOPS = 1024
NUM_CHAINS = 64
BATCH = 256
CODES = ["hamming(7,4)", "crc16"]
SPEEDUP_FLOOR = 5.0
SIMD_SINGLE_FLOOR = 1.0

DENSE_BATCH = 1024
DENSE_CODES = ["hamming(63,57)", "crc16"]
DENSE_ENGINE_FLOOR = 10.0
DENSE_CYCLE_FLOOR = 2.0


def _build(engine, codes=CODES):
    circuit = make_random_state_circuit(NUM_FLOPS, seed=1024)
    return ProtectedDesign(circuit, codes=codes, num_chains=NUM_CHAINS,
                           engine=engine)


def _time(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _outcomes_equal(left, right):
    return (left.injected_errors, left.detected, left.corrected_claim,
            left.state_intact, left.residual_errors, left.error_code,
            left.corrections_applied, left.reports) == \
        (right.injected_errors, right.detected, right.corrected_claim,
         right.state_intact, right.residual_errors, right.error_code,
         right.corrections_applied, right.reports)


@pytest.mark.benchmark(group="engines")
def test_single_error_campaign_throughput():
    """1024-flop, B=256 single-error campaign: batched >= 5x packed,
    simd >= batched."""
    pattern_rng = random.Random(20100308)
    probe = _build("batched")
    patterns = [single_error_pattern(probe.num_chains, probe.chain_length,
                                     pattern_rng) for _ in range(BATCH)]

    # -- batch engines: one pass for the whole batch -------------------
    batch_engines = ("batched", "simd") if SIMD_AVAILABLE else ("batched",)
    batch_outcomes = {}
    batch_times = {}
    for engine in batch_engines:
        design = _build(engine)
        design.sleep_wake_cycle_batch(patterns[:8])  # warm-up

        def run(design=design, engine=engine):
            batch_outcomes[engine] = design.sleep_wake_cycle_batch(
                patterns)

        batch_times[engine] = _time(run, repeats=3) / BATCH

    # -- packed engine: one scalar cycle per sequence ------------------
    design_packed = _build("packed")
    design_packed.sleep_wake_cycle(injection=patterns[0])  # warm-up
    outcomes_packed = {}

    def packed_run():
        outcomes_packed["out"] = [
            design_packed.sleep_wake_cycle(injection=pattern)
            for pattern in patterns]

    packed_time = _time(packed_run, repeats=2) / BATCH

    # -- reference engine: a handful of sequences, extrapolated --------
    design_reference = _build("reference")
    reference_sample = 2
    design_reference.sleep_wake_cycle(injection=patterns[0])  # warm-up

    def reference_run():
        for pattern in patterns[:reference_sample]:
            design_reference.sleep_wake_cycle(injection=pattern)

    reference_time = _time(reference_run, repeats=2) / reference_sample

    # Bit-exactness of the measured work itself: batched and simd
    # outcomes must equal the packed ones field for field (and every
    # single error is detected and corrected).
    for engine in batch_engines:
        for outcome_b, outcome_p in zip(batch_outcomes[engine],
                                        outcomes_packed["out"]):
            assert outcome_b.detected and outcome_b.state_intact
            assert _outcomes_equal(outcome_b, outcome_p), engine

    batched_time = batch_times["batched"]
    speedup_vs_packed = packed_time / batched_time
    speedup_vs_reference = reference_time / batched_time
    results = {
        "num_flops": NUM_FLOPS,
        "num_chains": NUM_CHAINS,
        "chain_length": probe.chain_length,
        "batch_size": BATCH,
        "codes": CODES,
        "seconds_per_sequence": {
            "reference": reference_time,
            "packed": packed_time,
            "batched": batched_time,
        },
        "sequences_per_second": {
            "reference": 1.0 / reference_time,
            "packed": 1.0 / packed_time,
            "batched": 1.0 / batched_time,
        },
        "batched_speedup_vs_packed": speedup_vs_packed,
        "batched_speedup_vs_reference": speedup_vs_reference,
        "floors": {
            "batched_speedup_vs_packed": SPEEDUP_FLOOR,
        },
    }
    lines = [
        f"reference engine : {reference_time * 1e3:9.2f} ms per sequence",
        f"packed engine    : {packed_time * 1e6:9.1f} us per sequence",
        f"batched engine   : {batched_time * 1e6:9.1f} us per sequence",
    ]
    if SIMD_AVAILABLE:
        simd_time = batch_times["simd"]
        simd_vs_batched = batched_time / simd_time
        results["seconds_per_sequence"]["simd"] = simd_time
        results["sequences_per_second"]["simd"] = 1.0 / simd_time
        results["simd_speedup_vs_batched"] = simd_vs_batched
        results["floors"]["simd_speedup_vs_batched"] = SIMD_SINGLE_FLOOR
        lines.append(f"simd engine      : {simd_time * 1e6:9.1f} us "
                     f"per sequence")
        lines.append(f"simd / batched   : {simd_vs_batched:9.2f}x "
                     f"(acceptance: >= {SIMD_SINGLE_FLOOR:.0f}x)")
    lines.append(f"batched / packed : {speedup_vs_packed:9.1f}x "
                 f"(acceptance: >= {SPEEDUP_FLOOR:.0f}x)")
    lines.append(f"batched / ref    : {speedup_vs_reference:9.0f}x")
    record_bench("engines", results, section="single_error_campaign")

    print_section("Engines -- 1024-flop, B=256 single-error campaign",
                  "\n".join(lines))
    assert speedup_vs_packed >= SPEEDUP_FLOOR
    if SIMD_AVAILABLE:
        assert simd_vs_batched >= SIMD_SINGLE_FLOOR


def _dense_burst_pattern(num_chains, chain_length, rng):
    """Two adjacent chains corrupted at *every* scan position -- the
    localised wipe-out of a strong supply transient.  Every decode
    slice of the affected codewords carries a multi-bit error, so
    nothing about the sequence is sparse."""
    chain0 = rng.randrange(num_chains - 1)
    return ErrorPattern(locations=frozenset(
        (chain0 + dc, position)
        for dc in (0, 1) for position in range(chain_length)),
        kind="burst")


@requires_simd
@pytest.mark.benchmark(group="engines")
def test_dense_error_campaign_throughput():
    """Dense bursts on every sequence: simd >= 10x batched at the
    engine level (where the bit-plane engine falls back to its scalar
    slice decoder for every sequence)."""
    rng = random.Random(20100309)
    probe = _build("batched", codes=DENSE_CODES)
    length = probe.chain_length
    patterns = [_dense_burst_pattern(NUM_CHAINS, length, rng)
                for _ in range(DENSE_BATCH)]

    # Shared, engine-independent preparation: pre-sleep state planes
    # and the same planes with every burst injected.
    states, knowns = pack_chains(probe.chains)
    flips = batch_pattern_flips(patterns, NUM_CHAINS, length)
    full = (1 << DENSE_BATCH) - 1

    def prepared_planes():
        clean = replicate_states(states, length, full)
        corrupted = replicate_states(states, length, full)
        apply_batch_flips(corrupted, knowns, flips, DENSE_BATCH)
        return clean, corrupted

    engine_times = {}
    engine_results = {}
    for name in ("batched", "simd"):
        design = _build(name, codes=DENSE_CODES)
        engine = get_engine(name, design)
        clean, corrupted = prepared_planes()

        def engine_pass(engine=engine, clean=clean, corrupted=corrupted,
                        name=name):
            engine.encode_pass_batch(clean, knowns, DENSE_BATCH)
            engine_results[name] = engine.decode_pass_batch(
                corrupted, knowns, DENSE_BATCH)

        engine_pass()  # warm-up
        engine_times[name] = _time(engine_pass, repeats=3) / DENSE_BATCH

    # The ndarray injection form must corrupt the word-packed state
    # exactly like the plane form the engines were driven with.
    from repro.engines.simd import planes_to_words, words_to_planes
    from repro.faults.batch import apply_batch_flips_words

    clean, corrupted = prepared_planes()
    words = planes_to_words(clean, DENSE_BATCH)
    word_counts = apply_batch_flips_words(words, knowns, flips,
                                          DENSE_BATCH)
    assert words_to_planes(words) == corrupted
    assert word_counts.tolist() == [2 * length] * DENSE_BATCH

    # The measured work is bit-identical between the engines, and every
    # sequence carries (at least detected) errors.
    batched_result = engine_results["batched"]
    simd_result = engine_results["simd"]
    assert simd_result.detected_mask == batched_result.detected_mask \
        == (1 << DENSE_BATCH) - 1
    assert simd_result.uncorrectable_mask \
        == batched_result.uncorrectable_mask
    assert simd_result.corrected == batched_result.corrected
    assert simd_result.reports == batched_result.reports

    # Cycle level: the same dense batch through the full monitored
    # sleep/wake sequence.
    cycle_times = {}
    cycle_outcomes = {}
    for name in ("batched", "simd"):
        design = _build(name, codes=DENSE_CODES)
        design.sleep_wake_cycle_batch(patterns[:8])  # warm-up

        def cycle_run(design=design, name=name):
            cycle_outcomes[name] = design.sleep_wake_cycle_batch(patterns)

        cycle_times[name] = _time(cycle_run, repeats=2) / DENSE_BATCH
    for outcome_b, outcome_s in zip(cycle_outcomes["batched"],
                                    cycle_outcomes["simd"]):
        assert _outcomes_equal(outcome_s, outcome_b)

    engine_speedup = engine_times["batched"] / engine_times["simd"]
    cycle_speedup = cycle_times["batched"] / cycle_times["simd"]
    record_bench("engines", {
        "num_flops": NUM_FLOPS,
        "num_chains": NUM_CHAINS,
        "chain_length": length,
        "batch_size": DENSE_BATCH,
        "codes": DENSE_CODES,
        "errors_per_sequence": 2 * length,
        "engine_seconds_per_sequence": {
            "batched": engine_times["batched"],
            "simd": engine_times["simd"],
        },
        "engine_sequences_per_second": {
            "batched": 1.0 / engine_times["batched"],
            "simd": 1.0 / engine_times["simd"],
        },
        "cycle_seconds_per_sequence": {
            "batched": cycle_times["batched"],
            "simd": cycle_times["simd"],
        },
        "simd_engine_speedup_vs_batched": engine_speedup,
        "simd_cycle_speedup_vs_batched": cycle_speedup,
        "floors": {
            "simd_engine_speedup_vs_batched": DENSE_ENGINE_FLOOR,
            "simd_cycle_speedup_vs_batched": DENSE_CYCLE_FLOOR,
        },
    }, section="dense_error_campaign")

    print_section(
        "Engines -- 1024-flop, B=1024 dense-burst campaign "
        "(every sequence corrupted)",
        f"batched engine pass : {engine_times['batched'] * 1e6:9.1f} us "
        f"per sequence\n"
        f"simd engine pass    : {engine_times['simd'] * 1e6:9.1f} us "
        f"per sequence\n"
        f"simd / batched      : {engine_speedup:9.1f}x "
        f"(acceptance: >= {DENSE_ENGINE_FLOOR:.0f}x)\n"
        f"batched full cycle  : {cycle_times['batched'] * 1e6:9.1f} us "
        f"per sequence\n"
        f"simd full cycle     : {cycle_times['simd'] * 1e6:9.1f} us "
        f"per sequence\n"
        f"simd / batched      : {cycle_speedup:9.1f}x "
        f"(acceptance: >= {DENSE_CYCLE_FLOOR:.0f}x)")
    assert engine_speedup >= DENSE_ENGINE_FLOOR
    assert cycle_speedup >= DENSE_CYCLE_FLOOR


SUMMARY_BATCH = 1024
SUMMARY_SEQUENCES = 8192
SUMMARY_FLOOR = 2.0


def _campaign_task(sampler):
    from repro.campaigns.tasks import FIFOValidationCampaignTask
    return FIFOValidationCampaignTask(
        width=32, depth=32, codes=("hamming(7,4)", "crc16"),
        num_chains=80, pattern="single", engine="simd",
        batch_size=SUMMARY_BATCH, sampler=sampler)


@requires_simd
@pytest.mark.benchmark(group="engines")
def test_campaign_summary_path_throughput():
    """End-to-end single-error campaign chunk on the paper's FPGA
    configuration (32x32 FIFO, 80 chains, Hamming(7,4)+CRC-16):
    the columnar summary path (sampler="array") must be >= 2x the
    batched object path on the simd engine.

    Both paths run the identical full cycle -- stimulus, controller,
    power domain, engine passes, campaign counters -- through
    ``FIFOValidationCampaignTask.run_chunk``; the only difference is
    per-sequence object assembly versus ndarray reductions, i.e. this
    measures exactly the Amdahl gap the summary path exists to close.
    """
    object_task = _campaign_task("scalar")
    summary_task = _campaign_task("array")

    # Bit-identity of the measured work: the same array-mode chunk on a
    # non-summary engine runs the object path on the same sampled
    # patterns and must produce identical counters.
    from dataclasses import replace
    check = summary_task.run_chunk(20100308, 2 * SUMMARY_BATCH)
    fallback = replace(summary_task, engine="packed").run_chunk(
        20100308, 2 * SUMMARY_BATCH)
    assert check == fallback, \
        "summary path diverged from the object path"
    assert check.stats.detection_rate() == 1.0
    assert check.stats.correction_rate() == 1.0

    times = {}
    for label, task in (("object", object_task), ("summary", summary_task)):
        task.run_chunk(20100308, SUMMARY_BATCH)  # warm-up

        def run(task=task):
            task.run_chunk(20100308, SUMMARY_SEQUENCES)

        times[label] = _time(run, repeats=2) / SUMMARY_SEQUENCES

    speedup = times["object"] / times["summary"]
    record_bench("engines", {
        "num_flops": 32 * 32 + 16,
        "num_chains": 80,
        "batch_size": SUMMARY_BATCH,
        "num_sequences": SUMMARY_SEQUENCES,
        "codes": ["hamming(7,4)", "crc16"],
        "pattern": "single",
        "engine": "simd",
        "cycle_seconds_per_sequence": {
            "object_path": times["object"],
            "summary_path": times["summary"],
        },
        "cycle_sequences_per_second": {
            "object_path": 1.0 / times["object"],
            "summary_path": 1.0 / times["summary"],
        },
        "summary_speedup_vs_object": speedup,
        "floors": {
            "summary_speedup_vs_object": SUMMARY_FLOOR,
        },
    }, section="campaign_summary_path")

    print_section(
        "Engines -- end-to-end single-error campaign "
        "(32x32 FIFO, simd engine)",
        f"object path (per-sequence results) : "
        f"{times['object'] * 1e6:9.1f} us per sequence\n"
        f"summary path (columnar counters)   : "
        f"{times['summary'] * 1e6:9.1f} us per sequence\n"
        f"summary / object                   : {speedup:9.1f}x "
        f"(acceptance: >= {SUMMARY_FLOOR:.0f}x)")
    assert speedup >= SUMMARY_FLOOR


DELTA_BATCH = 4096
DELTA_SEQUENCES = 32768
DELTA_FLOOR = 2.0


@requires_simd
@pytest.mark.benchmark(group="engines")
def test_campaign_delta_path_throughput():
    """End-to-end single-error campaign chunk, sparse-delta versus
    dense summary path, on the same 32x32-FIFO configuration as
    ``campaign_summary_path``: the delta path must be >= 2x (measured
    ~3-4x; the engine-level pass alone is >10x, the end-to-end gap is
    bounded by the path-independent stimulus/controller work).

    A single-error batch is maximally sparse (1 flip per sequence
    against the 8-flips-per-sequence crossover), so ``"auto"`` must
    resolve to the delta path on this workload -- asserted on the
    engine after the run.
    """
    from dataclasses import replace

    dense_task = replace(_campaign_task("array"), batch_size=DELTA_BATCH,
                         summary_path="dense")
    delta_task = replace(_campaign_task("array"), batch_size=DELTA_BATCH,
                         summary_path="delta")
    auto_task = replace(_campaign_task("array"), batch_size=DELTA_BATCH)

    # Bit-identity of the measured work: forced delta and forced dense
    # chunks agree counter for counter (the full property suite lives
    # in tests/engines/test_delta_path.py).
    check_delta = delta_task.run_chunk(20100308, 2 * DELTA_BATCH)
    check_dense = dense_task.run_chunk(20100308, 2 * DELTA_BATCH)
    assert check_delta == check_dense, \
        "delta path diverged from the dense summary path"
    assert check_delta.stats.detection_rate() == 1.0
    assert check_delta.stats.correction_rate() == 1.0

    times = {}
    for label, task in (("dense", dense_task), ("delta", delta_task)):
        task.run_chunk(20100308, DELTA_BATCH)  # warm-up

        def run(task=task):
            task.run_chunk(20100308, DELTA_SEQUENCES)

        times[label] = _time(run, repeats=2) / DELTA_SEQUENCES

    # "auto" picks delta on this sparse workload (and matches both
    # forced chunks) -- asserted at the engine level, where the chosen
    # path is published.
    import numpy as np

    from repro.circuit.fifo import SyncFIFO
    from repro.faults.batch import sample_pattern_batch

    assert auto_task.run_chunk(20100308, 2 * DELTA_BATCH) == check_delta
    design = ProtectedDesign(SyncFIFO(32, 32, name="fifo32x32"),
                             codes=["hamming(7,4)", "crc16"],
                             num_chains=80, engine="simd")
    engine = get_engine("simd", design)
    sampled = sample_pattern_batch("single", design.num_chains,
                                   design.chain_length, 256,
                                   np.random.default_rng(1))
    engine.run_batch_summary(*pack_chains(design.chains), sampled, 256)
    assert engine.last_summary_path == "delta"

    speedup = times["dense"] / times["delta"]
    record_bench("engines", {
        "num_flops": 32 * 32 + 16,
        "num_chains": 80,
        "batch_size": DELTA_BATCH,
        "num_sequences": DELTA_SEQUENCES,
        "codes": ["hamming(7,4)", "crc16"],
        "pattern": "single",
        "engine": "simd",
        "cycle_seconds_per_sequence": {
            "dense_path": times["dense"],
            "delta_path": times["delta"],
        },
        "cycle_sequences_per_second": {
            "dense_path": 1.0 / times["dense"],
            "delta_path": 1.0 / times["delta"],
        },
        "delta_speedup_vs_dense": speedup,
        "floors": {
            "delta_speedup_vs_dense": DELTA_FLOOR,
        },
    }, section="campaign_delta_path")

    print_section(
        "Engines -- end-to-end single-error campaign, delta vs dense "
        "summary path (32x32 FIFO, simd engine)",
        f"dense summary path (word folds)    : "
        f"{times['dense'] * 1e6:9.1f} us per sequence\n"
        f"delta summary path (LUT-XOR)       : "
        f"{times['delta'] * 1e6:9.1f} us per sequence\n"
        f"delta / dense                      : {speedup:9.1f}x "
        f"(acceptance: >= {DELTA_FLOOR:.0f}x)")
    assert speedup >= DELTA_FLOOR


@pytest.mark.benchmark(group="engines")
def test_batch_size_scaling():
    """Throughput grows with the batch size (amortisation is real)."""
    rng = random.Random(7)
    design = _build("batched")
    patterns = [single_error_pattern(design.num_chains,
                                     design.chain_length, rng)
                for _ in range(BATCH)]
    design.sleep_wake_cycle_batch(patterns[:4])  # warm-up
    per_sequence = {}
    for batch_size in (1, 16, 256):
        chunk = patterns[:batch_size]
        repeats = max(1, 32 // batch_size)

        def run():
            for _ in range(repeats):
                design.sleep_wake_cycle_batch(chunk)

        per_sequence[batch_size] = _time(run, repeats=2) \
            / (repeats * batch_size)

    print_section(
        "Engines -- batch-size scaling (per-sequence cost)",
        "\n".join(f"B = {b:4d}: {t * 1e6:9.1f} us per sequence"
                  for b, t in per_sequence.items()))
    # B=256 must amortise at least 3x better than B=1 per sequence.
    assert per_sequence[256] * 3 <= per_sequence[1]
