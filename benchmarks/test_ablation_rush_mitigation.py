"""Ablation benchmark: rush-current reduction [7,8] vs state monitoring.

The paper positions itself against the prior art of slowing down the
wake-up (staggered sleep-transistor turn-on, refs [7] and [8]): those
techniques reduce the droop and therefore the upset *probability*, but
cannot repair a state that does get corrupted.  This ablation quantifies
both effects with the droop-driven fault model:

* sweeping the number of turn-on stages shows the droop (and the
  expected upset count) falling -- the prior art's benefit;
* at any given droop, the monitored design repairs the upsets that do
  occur while the unmonitored design silently corrupts -- the paper's
  benefit;
* the cost side: staggering stretches the wake-up settle time, while
  monitoring costs encode/decode latency and area.
"""

import pytest

from benchmarks.conftest import bench_sequences, print_section
from repro.circuit.generators import make_random_state_circuit
from repro.core.protected import ProtectedDesign
from repro.power.retention import RetentionUpsetModel
from repro.power.rush_current import RLCParameters, RushCurrentModel


@pytest.mark.benchmark(group="ablation")
def test_staggering_vs_monitoring(benchmark):
    rlc = RLCParameters()
    upset_margin = 0.12    # weak latches: well inside the droop hazard

    def sweep():
        rows = []
        for stages in (1, 2, 4, 8):
            rush = RushCurrentModel(rlc, num_switch_stages=stages)
            droop = rush.peak_droop()
            expected = RetentionUpsetModel(
                nominal_margin=upset_margin).expected_upsets(1040, droop)
            rows.append((stages, droop, expected,
                         rush.settle_time() * stages))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # More stages -> lower droop, fewer expected upsets, longer wake-up.
    droops = [row[1] for row in rows]
    upsets = [row[2] for row in rows]
    assert droops == sorted(droops, reverse=True)
    assert upsets == sorted(upsets, reverse=True)
    assert upsets[-1] < upsets[0]

    # Even the most aggressive staggering leaves a non-zero upset
    # expectation for weak latches -- which only monitoring can repair.
    assert upsets[-1] > 0.0

    # Monitoring side: upsets that do happen are caught and repaired.
    sequences = bench_sequences(10)
    circuit = make_random_state_circuit(256, seed=3)
    design = ProtectedDesign(
        circuit, codes=["hamming(7,4)", "crc16"], num_chains=16,
        upset_model=RetentionUpsetModel(nominal_margin=upset_margin,
                                        slope=0.02, seed=11))
    detected = corrected = with_upsets = 0
    for _ in range(sequences):
        outcome = design.sleep_wake_cycle()
        if outcome.injected_errors:
            with_upsets += 1
            detected += 1 if outcome.detected else 0
            corrected += 1 if outcome.state_intact else 0
    if with_upsets:
        assert detected == with_upsets

    lines = ["stages | peak droop V | E[upsets]/1040 FF | relative wake time"]
    lines.append("-" * len(lines[0]))
    for stages, droop, expected, settle in rows:
        lines.append(f"{stages:6d} | {droop:12.3f} | {expected:17.2f} "
                     f"| {settle / rows[0][3]:8.2f}x")
    lines.append("")
    lines.append(
        f"monitored design over {sequences} droop-driven sleep cycles: "
        f"{with_upsets} cycles saw upsets, {detected} detected, "
        f"{corrected} fully repaired")
    print_section("Ablation -- rush-current mitigation vs state monitoring",
                  "\n".join(lines))
