"""Ablation benchmark: detection/correction options across the design space.

The paper's Section V closes with the engineering guidance: "if large
area overhead is not acceptable then the approach of CRC error detection
with software recovery may be considered".  This ablation puts numbers
on the whole option space on the 32x32 FIFO at the paper's W = 80
configuration:

* parity-per-slice (cheapest detection),
* CRC-16 (the paper's detection option),
* Hamming(7,4) (the paper's correction option),
* SECDED(8,4) (correction plus double-error detection),
* Hamming(7,4) + CRC-16 (the paper's FPGA validation stack).
"""

import pytest

from benchmarks.conftest import print_section
from repro.circuit.fifo import SyncFIFO
from repro.core.protected import ProtectedDesign


OPTIONS = (
    ("parity(4)", ["parity(4)"]),
    ("crc16", ["crc16"]),
    ("hamming(7,4)", ["hamming(7,4)"]),
    ("secded(8,4)", ["secded(8,4)"]),
    ("hamming(7,4)+crc16", ["hamming(7,4)", "crc16"]),
)


@pytest.mark.benchmark(group="ablation")
def test_detection_correction_option_space(benchmark, paper_fifo):
    def sweep():
        rows = []
        for label, codes in OPTIONS:
            design = ProtectedDesign(paper_fifo, codes=codes, num_chains=80)
            cost = design.cost_report()
            corrects = any(getattr(c, "correctable_errors", 0) > 0
                           for c in design.codes)
            rows.append((label, cost.area_overhead_percent,
                         cost.encode_cost.power_mw,
                         cost.encode_cost.energy_nj, corrects))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_label = {row[0]: row for row in rows}

    # Ordering of area overhead: per-slice parity storage already costs
    # more than the single shared CRC register, and every detection
    # option is far cheaper than per-slice Hamming correction.
    assert by_label["parity(4)"][1] < by_label["hamming(7,4)"][1]
    assert by_label["crc16"][1] < by_label["hamming(7,4)"][1]
    assert by_label["hamming(7,4)"][1] < by_label["hamming(7,4)+crc16"][1]
    # SECDED costs more than plain Hamming (extra parity bit per slice).
    assert by_label["secded(8,4)"][1] > by_label["hamming(7,4)"][1]
    # Correction ability flags.
    assert not by_label["crc16"][4]
    assert by_label["hamming(7,4)"][4]

    lines = ["option               | ovh %  | power mW | energy nJ | corrects"]
    lines.append("-" * len(lines[0]))
    for label, ovh, power, energy, corrects in rows:
        lines.append(f"{label:20s} | {ovh:6.1f} | {power:8.2f} "
                     f"| {energy:9.2f} | {'yes' if corrects else 'no'}")
    print_section("Ablation -- detection/correction option space at W=80",
                  "\n".join(lines))
