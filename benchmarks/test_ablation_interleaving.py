"""Ablation benchmark: interleaved Hamming against the paper's plain Hamming.

DESIGN.md calls out interleaving as the standard countermeasure to the
clustered-burst failure mode the paper observes (its multi-error
experiment corrects nothing because the burst lands inside one
codeword).  This ablation runs the same clustered-burst campaign with

* the paper's plain Hamming(7,4) + CRC-16 stack, and
* a depth-4 interleaved Hamming(7,4) + CRC-16 stack,

and shows that interleaving recovers most of the correction capability
on bursts while detection remains at 100 % for both.
"""

import pytest

from benchmarks.conftest import bench_sequences, print_section
from repro.circuit.fifo import SyncFIFO
from repro.codes.hamming import HammingCode
from repro.codes.interleave import InterleavedCode
from repro.core.protected import ProtectedDesign
from repro.validation.campaign import run_multiple_error_campaign
from repro.validation.testbench import FIFOTestbench


def _campaign(codes, sequences, seed=4242):
    fifo = SyncFIFO(16, 16, name="fifo_ablation")
    design = ProtectedDesign(fifo, codes=codes, num_chains=16)
    testbench = FIFOTestbench(design, seed=seed)
    return run_multiple_error_campaign(testbench, num_sequences=sequences,
                                       burst_size=3, clustered=True,
                                       seed=seed)


@pytest.mark.benchmark(group="ablation")
def test_interleaving_recovers_burst_correction(benchmark):
    sequences = bench_sequences(25)

    def run():
        plain = _campaign([HammingCode(7, 4), "crc16"], sequences)
        interleaved = _campaign(
            [InterleavedCode(HammingCode(7, 4), depth=4), "crc16"],
            sequences)
        return plain, interleaved

    plain, interleaved = benchmark.pedantic(run, rounds=1, iterations=1)

    # Both stacks detect every burst.
    assert plain.stats.detection_rate() == 1.0
    assert interleaved.stats.detection_rate() == 1.0
    assert plain.stats.silent_corruptions == 0
    assert interleaved.stats.silent_corruptions == 0

    # Interleaving corrects strictly more of the clustered bursts.
    assert (interleaved.stats.correction_rate()
            > plain.stats.correction_rate())

    # And the cost: the interleaved monitor needs no extra parity
    # storage (same r/k ratio), so its area overhead stays comparable.
    fifo = SyncFIFO(16, 16)
    plain_cost = ProtectedDesign(fifo, codes=HammingCode(7, 4),
                                 num_chains=16).cost_report()
    inter_cost = ProtectedDesign(
        fifo, codes=InterleavedCode(HammingCode(7, 4), depth=4),
        num_chains=16).cost_report()
    area_ratio = (inter_cost.area_overhead_percent
                  / plain_cost.area_overhead_percent)

    print_section(
        "Ablation -- interleaved Hamming(7,4) vs plain Hamming(7,4) on "
        f"clustered 3-bit bursts ({sequences} sequences)",
        "\n".join([
            f"plain       correction rate: "
            f"{plain.stats.correction_rate():8.2%}   "
            f"detection: {plain.stats.detection_rate():.0%}",
            f"interleaved correction rate: "
            f"{interleaved.stats.correction_rate():8.2%}   "
            f"detection: {interleaved.stats.detection_rate():.0%}",
            f"area overhead ratio (interleaved / plain): {area_ratio:.2f}",
        ]))
