"""Shared fixtures and reporting helpers for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper's
evaluation section (see DESIGN.md's per-experiment index), checks the
*shape* of the result against the published numbers, and prints the
measured-versus-paper comparison so that EXPERIMENTS.md can be assembled
from the benchmark log.

Run with::

    pytest benchmarks/ --benchmark-only

Environment knobs:

* ``REPRO_BENCH_SEQUENCES`` -- overrides the Monte-Carlo sample sizes
  (default keeps the whole suite in the a-few-minutes range; the paper
  used 10^6-10^8 sequences).
"""

import json
import os
import platform
import sys
import time
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.circuit.fifo import SyncFIFO               # noqa: E402
from repro.core.protected import ProtectedDesign       # noqa: E402


def bench_sequences(default: int) -> int:
    """Monte-Carlo sample size, overridable via REPRO_BENCH_SEQUENCES."""
    override = os.environ.get("REPRO_BENCH_SEQUENCES")
    if override:
        return max(1, int(override))
    return default


@pytest.fixture(scope="session")
def paper_fifo():
    """The paper's 32x32 FIFO case-study circuit (1040 registers)."""
    return SyncFIFO(32, 32, name="fifo32x32")


@pytest.fixture(scope="session")
def paper_protected_design(paper_fifo):
    """The paper's FPGA validation configuration: 80 chains x 13 flops,
    Hamming(7,4) correction plus CRC-16 verification."""
    return ProtectedDesign(paper_fifo, codes=["hamming(7,4)", "crc16"],
                           num_chains=80)


def print_section(title: str, body: str) -> None:
    """Print a titled block that survives pytest's output capture (-s)."""
    bar = "=" * max(len(title), 8)
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


#: Machine-readable benchmark results are written as
#: ``BENCH_<name>.json`` so the perf trajectory is tracked between
#: PRs.  Default target is the untracked ``benchmarks/results/``
#: scratch directory (also what CI uploads as an artifact); set
#: ``REPRO_BENCH_UPDATE_REFERENCE=1`` to rewrite the *committed*
#: reference copies at the repo root instead -- that keeps ordinary
#: benchmark runs from dirtying the tree with non-reference numbers.
BENCH_REFERENCE_DIR = Path(__file__).resolve().parent.parent
BENCH_SCRATCH_DIR = Path(__file__).resolve().parent / "results"


def record_bench(name: str, results: dict) -> Path:
    """Write one benchmark's results as ``BENCH_<name>.json``.

    ``results`` must be JSON-serialisable; the envelope adds the
    Python/platform fingerprint and a timestamp so numbers from
    different machines are never compared silently.
    """
    if os.environ.get("REPRO_BENCH_UPDATE_REFERENCE"):
        directory = BENCH_REFERENCE_DIR
    else:
        directory = BENCH_SCRATCH_DIR
        directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    payload = {
        "bench": name,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "results": results,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path
