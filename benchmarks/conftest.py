"""Shared fixtures and reporting helpers for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper's
evaluation section (see DESIGN.md's per-experiment index), checks the
*shape* of the result against the published numbers, and prints the
measured-versus-paper comparison so that EXPERIMENTS.md can be assembled
from the benchmark log.

Run with::

    pytest benchmarks/ --benchmark-only

Environment knobs:

* ``REPRO_BENCH_SEQUENCES`` -- overrides the Monte-Carlo sample sizes
  (default keeps the whole suite in the a-few-minutes range; the paper
  used 10^6-10^8 sequences).
"""

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.circuit.fifo import SyncFIFO               # noqa: E402
from repro.core.protected import ProtectedDesign       # noqa: E402


def bench_sequences(default: int) -> int:
    """Monte-Carlo sample size, overridable via REPRO_BENCH_SEQUENCES."""
    override = os.environ.get("REPRO_BENCH_SEQUENCES")
    if override:
        return max(1, int(override))
    return default


@pytest.fixture(scope="session")
def paper_fifo():
    """The paper's 32x32 FIFO case-study circuit (1040 registers)."""
    return SyncFIFO(32, 32, name="fifo32x32")


@pytest.fixture(scope="session")
def paper_protected_design(paper_fifo):
    """The paper's FPGA validation configuration: 80 chains x 13 flops,
    Hamming(7,4) correction plus CRC-16 verification."""
    return ProtectedDesign(paper_fifo, codes=["hamming(7,4)", "crc16"],
                           num_chains=80)


def print_section(title: str, body: str) -> None:
    """Print a titled block that survives pytest's output capture (-s)."""
    bar = "=" * max(len(title), 8)
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
