"""Shared fixtures and reporting helpers for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper's
evaluation section (see DESIGN.md's per-experiment index), checks the
*shape* of the result against the published numbers, and prints the
measured-versus-paper comparison so that EXPERIMENTS.md can be assembled
from the benchmark log.

Run with::

    pytest benchmarks/ --benchmark-only

Environment knobs:

* ``REPRO_BENCH_SEQUENCES`` -- overrides the Monte-Carlo sample sizes
  (default keeps the whole suite in the a-few-minutes range; the paper
  used 10^6-10^8 sequences).
"""

import json
import os
import platform
import sys
import time
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.circuit.fifo import SyncFIFO               # noqa: E402
from repro.core.protected import ProtectedDesign       # noqa: E402


def bench_sequences(default: int) -> int:
    """Monte-Carlo sample size, overridable via REPRO_BENCH_SEQUENCES."""
    override = os.environ.get("REPRO_BENCH_SEQUENCES")
    if override:
        return max(1, int(override))
    return default


@pytest.fixture(scope="session")
def paper_fifo():
    """The paper's 32x32 FIFO case-study circuit (1040 registers)."""
    return SyncFIFO(32, 32, name="fifo32x32")


@pytest.fixture(scope="session")
def paper_protected_design(paper_fifo):
    """The paper's FPGA validation configuration: 80 chains x 13 flops,
    Hamming(7,4) correction plus CRC-16 verification."""
    return ProtectedDesign(paper_fifo, codes=["hamming(7,4)", "crc16"],
                           num_chains=80)


def print_section(title: str, body: str) -> None:
    """Print a titled block that survives pytest's output capture (-s)."""
    bar = "=" * max(len(title), 8)
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


#: Machine-readable benchmark results are written as
#: ``BENCH_<name>.json`` so the perf trajectory is tracked between
#: PRs.  One canonical writer emits every location from a single code
#: path: the untracked ``benchmarks/results/`` scratch directory is
#: always written (it is what CI uploads as an artifact and what the
#: regression guard reads), and with ``REPRO_BENCH_UPDATE_REFERENCE=1``
#: the *committed* reference copy at the repo root is refreshed from
#: the same payload -- so the two locations can never drift apart,
#: while ordinary benchmark runs still keep the tree clean.
BENCH_REFERENCE_DIR = Path(__file__).resolve().parent.parent
BENCH_SCRATCH_DIR = Path(__file__).resolve().parent / "results"

#: Targets record_bench has already written during this interpreter's
#: lifetime: the first write of a run truncates (dropping stale
#: sections from earlier runs), later writes merge section-wise.
_WRITTEN_THIS_RUN: set = set()

#: Every record_bench call also appends one line to a
#: ``BENCH_history.jsonl`` trajectory next to the JSON it wrote: the
#: flattened numeric metrics plus the envelope fingerprint.  The
#: scratch copy travels with the CI artifact; the committed root copy
#: (appended only under ``REPRO_BENCH_UPDATE_REFERENCE=1``) is the
#: cross-PR perf trajectory that ``check_regression.py`` prints deltas
#: against.
BENCH_HISTORY_NAME = "BENCH_history.jsonl"


def flatten_metrics(results: dict, path=()) -> dict:
    """Numeric leaves of a results tree as ``{"a/b/c": value}``,
    skipping the ``floors`` sub-dicts (they are policy, not
    measurements)."""
    out = {}
    for key, value in results.items():
        if key == "floors":
            continue
        if isinstance(value, dict):
            out.update(flatten_metrics(value, path + (key,)))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            out["/".join(path + (key,))] = value
    return out


def _engine_metadata() -> dict:
    """Array-backend/engine fingerprint embedded in every benchmark
    envelope and history row (never raises -- benchmarks must record
    even on a pure-stdlib install, where every entry is None).  The
    numba version rides along so jit-engine numbers are never compared
    across compiler versions (or against uncompiled runs) silently."""
    numpy_version = None
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:
        pass
    backend = None
    try:
        from repro.engines.backend import default_backend_name
        backend = default_backend_name()
    except Exception:
        pass
    numba_version = None
    try:
        from repro.engines.jit import NUMBA_VERSION
        numba_version = NUMBA_VERSION
    except Exception:
        pass
    return {"numpy": numpy_version, "backend": backend,
            "numba": numba_version}


def record_bench(name: str, results: dict,
                 section: "str | None" = None) -> Path:
    """Write one benchmark's results as ``BENCH_<name>.json``.

    ``results`` must be JSON-serialisable; the envelope adds the
    Python/platform fingerprint, the array-backend metadata (numpy
    version + default backend name) and a timestamp so numbers from
    different machines -- or different array backends -- are never
    compared silently.

    With ``section`` the file holds one sub-dict per microbenchmark
    (``results[section]``) and this call replaces only its own
    section, merging with the sections *this process* already wrote to
    the target -- that is how several benchmark functions share one
    ``BENCH_engines.json``.  The first write of a run starts the file
    fresh, so sections from renamed or removed benchmarks cannot
    linger and fool the regression guard.  Sections include a
    ``floors`` sub-dict mapping metric names to their acceptance
    floors; the CI regression guard
    (``benchmarks/check_regression.py``) compares freshly measured
    metrics against the committed reference floors.
    """
    directories = [BENCH_SCRATCH_DIR]
    if os.environ.get("REPRO_BENCH_UPDATE_REFERENCE"):
        directories.append(BENCH_REFERENCE_DIR)
    engine_meta = _engine_metadata()
    path = None
    for directory in directories:
        directory.mkdir(parents=True, exist_ok=True)
        target = directory / f"BENCH_{name}.json"
        merged = results
        if section is not None:
            merged = {}
            if target in _WRITTEN_THIS_RUN and target.exists():
                try:
                    previous = json.loads(target.read_text("utf-8"))
                    merged = {
                        key: value
                        for key, value in previous.get("results",
                                                       {}).items()
                        if isinstance(value, dict)}
                except (ValueError, OSError):
                    merged = {}
            merged[section] = results
        _WRITTEN_THIS_RUN.add(target)
        payload = {
            "bench": name,
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "numpy": engine_meta["numpy"],
            "backend": engine_meta["backend"],
            "numba": engine_meta["numba"],
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                         time.gmtime()),
            "results": merged,
        }
        target.write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")
        history_entry = {
            "bench": name,
            "section": section,
            "recorded_at": payload["recorded_at"],
            "python": payload["python"],
            "platform": payload["platform"],
            "numpy": engine_meta["numpy"],
            "backend": engine_meta["backend"],
            "numba": engine_meta["numba"],
            "metrics": flatten_metrics(results),
        }
        with open(directory / BENCH_HISTORY_NAME, "a",
                  encoding="utf-8") as handle:
            handle.write(json.dumps(history_entry, sort_keys=True) + "\n")
        if path is None:
            path = target
    return path
