"""Benchmarks E1/E2: the FPGA validation campaigns of Section IV.

The paper runs 10^8 test sequences on a Virtex-II Pro; here the same
five-stage test bench (Fig. 8) runs in software on the paper's exact
configuration -- the 32x32 FIFO with 80 scan chains of 13 flops,
monitored by Hamming(7,4) for correction and CRC-16 for verification.

Headline results to reproduce:

* single-error campaign -- 100 % detection, 100 % correction, zero
  comparator mismatches;
* multiple-error (clustered burst) campaign -- 100 % detection, zero
  silent corruption, (near-)zero correction.

The sequence count defaults to a CI-sized value; set
``REPRO_BENCH_SEQUENCES`` to scale the campaign up.
"""

import pytest

from benchmarks.conftest import bench_sequences, print_section
from repro.circuit.fifo import SyncFIFO
from repro.core.protected import ProtectedDesign
from repro.validation.campaign import (
    run_multiple_error_campaign,
    run_single_error_campaign,
)
from repro.validation.testbench import FIFOTestbench


def _paper_testbench(seed=20100308):
    fifo = SyncFIFO(32, 32, name="fifo_a")
    design = ProtectedDesign(fifo, codes=["hamming(7,4)", "crc16"],
                             num_chains=80)
    return FIFOTestbench(design, seed=seed, words_per_sequence=16)


@pytest.mark.benchmark(group="validation")
def test_single_error_campaign(benchmark):
    sequences = bench_sequences(30)
    testbench = _paper_testbench()
    result = benchmark.pedantic(
        lambda: run_single_error_campaign(testbench,
                                          num_sequences=sequences),
        rounds=1, iterations=1)

    # Paper: "the error correction circuitry detected and corrected all
    # single errors ... no error was reported by FIFO_A" (meaning no
    # uncorrected error), verified by the comparator.
    assert result.stats.detection_rate() == 1.0
    assert result.stats.correction_rate() == 1.0
    assert result.stats.bit_correction_rate() == 1.0
    assert result.mismatches_reported_by_comparator == 0
    assert result.stats.silent_corruptions == 0
    assert result.inconsistent_sequences == 0

    print_section(
        f"Validation E1 -- single-error campaign ({sequences} sequences)",
        result.summary())


@pytest.mark.benchmark(group="validation")
def test_multiple_error_campaign(benchmark):
    sequences = bench_sequences(30)
    testbench = _paper_testbench(seed=20100309)
    result = benchmark.pedantic(
        lambda: run_multiple_error_campaign(testbench,
                                            num_sequences=sequences,
                                            burst_size=4, clustered=True),
        rounds=1, iterations=1)

    # Paper: "none of the errors were corrected ... however all these
    # errors were accurately detected".
    assert result.stats.detection_rate() == 1.0
    assert result.stats.correction_rate() < 0.5
    assert result.stats.silent_corruptions == 0
    assert result.inconsistent_sequences == 0

    print_section(
        f"Validation E2 -- clustered multi-error campaign "
        f"({sequences} sequences, 4-bit bursts)",
        result.summary())


@pytest.mark.benchmark(group="validation")
def test_unprotected_baseline_suffers_silent_corruption(benchmark):
    """Reliability baseline: the same FIFO without monitoring.

    Demonstrates what the methodology buys: with the conventional
    control sequence (Fig. 3(a)) every injected retention upset becomes
    a silent corruption.
    """
    sequences = bench_sequences(20)
    fifo = SyncFIFO(32, 32, name="fifo_unprotected")
    design = ProtectedDesign(fifo, codes=["hamming(7,4)", "crc16"],
                             num_chains=80)

    def run():
        import random

        from repro.faults.patterns import single_error_pattern
        rng = random.Random(1)
        silent = 0
        for _ in range(sequences):
            pattern = single_error_pattern(80, 13, rng)
            outcome = design.unprotected_sleep_wake_cycle(injection=pattern)
            silent += 1 if outcome.silent_corruption else 0
        return silent

    silent = benchmark.pedantic(run, rounds=1, iterations=1)
    assert silent == sequences

    print_section(
        "Validation baseline -- unprotected sleep/wake",
        f"{silent}/{sequences} sequences ended with silent state corruption "
        f"(100 % expected without monitoring)")
