"""Benchmark: packed fast-path speedup over the bit-serial reference.

Acceptance criterion of the fastpath subsystem: on a 1024-flop
circulate+CRC campaign the packed engine must be at least 10x faster
than the bit-serial reference while remaining bit-exact (the
equivalence itself is enforced by ``tests/fastpath/``; this benchmark
re-checks the signatures it measures).

Two measurements are reported:

* the raw hot loop -- one full chain circulation plus a CRC-16
  signature of the emitted stream, the per-monitoring-block work of one
  encode pass;
* the end-to-end monitored sleep/wake cycle on the paper's 32x32 FIFO
  configuration, where the packed engine's advantage is diluted by the
  per-flop retention bookkeeping both engines share.
"""

import random
import time

import pytest

from benchmarks.conftest import print_section, record_bench
from repro.circuit.fifo import SyncFIFO
from repro.circuit.flipflop import ScanFlipFlop
from repro.circuit.scan import ScanChain
from repro.codes.crc import CRCCode
from repro.codes.packed import PackedCRC
from repro.core.protected import ProtectedDesign
from repro.fastpath.packed_chain import PackedScanChain

CHAIN_BITS = 1024
SPEEDUP_FLOOR = 10.0


def _time(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.benchmark(group="fastpath")
def test_circulate_crc_campaign_speedup():
    """1024-flop circulate + CRC-16: packed must be >= 10x faster."""
    rng = random.Random(1024)
    values = [rng.randint(0, 1) for _ in range(CHAIN_BITS)]
    crc = CRCCode.from_name("crc16")

    reference_chain = ScanChain(
        [ScanFlipFlop(name=f"ff{i}", init=v) for i, v in enumerate(values)])

    def reference_pass():
        stream = reference_chain.circulate()
        return crc.signature_int(stream)

    packed_chain = PackedScanChain.from_values(values)
    packed_crc = PackedCRC(crc)

    def packed_pass():
        stream, _known = packed_chain.circulate()
        return packed_crc.signature_int(stream, CHAIN_BITS)

    # Bit-exactness of the measured work itself.
    assert packed_pass() == reference_pass()

    reference_time = _time(reference_pass, repeats=2)
    # The packed pass is far below timer resolution; time a batch.
    batch = 2000

    def packed_batch():
        for _ in range(batch):
            packed_pass()

    packed_time = _time(packed_batch, repeats=3) / batch
    speedup = reference_time / packed_time

    record_bench("fastpath", {
        "chain_bits": CHAIN_BITS,
        "seconds_per_pass": {
            "reference": reference_time,
            "packed": packed_time,
        },
        "packed_speedup_vs_reference": speedup,
        "floors": {
            "packed_speedup_vs_reference": SPEEDUP_FLOOR,
        },
    }, section="circulate_crc16")
    print_section(
        "Fastpath -- 1024-flop circulate+CRC campaign",
        f"bit-serial reference: {reference_time * 1e3:9.2f} ms per pass\n"
        f"packed engine       : {packed_time * 1e6:9.2f} us per pass\n"
        f"speed-up            : {speedup:9.0f}x "
        f"(acceptance: >= {SPEEDUP_FLOOR:.0f}x)")
    assert speedup >= SPEEDUP_FLOOR


@pytest.mark.benchmark(group="fastpath")
def test_sleep_wake_cycle_speedup():
    """End-to-end monitored sleep/wake on the paper configuration.

    The assertion floor (2x) is deliberately far below the typical
    measurement (~7x) because this wall-clock comparison also runs in
    CI on shared runners; best-of-three timing keeps scheduler noise
    out of the numerator and denominator alike.
    """
    times = {}
    outcomes = {}
    for engine in ("reference", "packed"):
        fifo = SyncFIFO(32, 32, name="fifo32x32")
        rng = random.Random(2010)
        for _ in range(16):
            fifo.push_int(rng.getrandbits(32))
        design = ProtectedDesign(fifo, codes=["hamming(7,4)", "crc16"],
                                 num_chains=80, engine=engine)
        design.sleep_wake_cycle()  # warm-up (builds engine, caches wake)
        cycles = 3 if engine == "reference" else 30

        def run_cycles():
            for _ in range(cycles):
                outcomes[engine] = design.sleep_wake_cycle()

        times[engine] = _time(run_cycles, repeats=3) / cycles

    assert outcomes["packed"].state_intact == \
        outcomes["reference"].state_intact
    speedup = times["reference"] / times["packed"]
    print_section(
        "Fastpath -- monitored sleep/wake cycle (32x32 FIFO, W=80)",
        f"reference engine: {times['reference'] * 1e3:8.2f} ms per cycle\n"
        f"packed engine   : {times['packed'] * 1e3:8.2f} ms per cycle\n"
        f"speed-up        : {speedup:8.1f}x (floor: 2x; the remaining\n"
        f"cost is per-flop retention bookkeeping shared by both engines)")
    assert speedup >= 2.0
