"""Benchmark E4: regenerate the paper's Table II (Hamming(7,4) sweep).

Same sweep as Table I but with the correcting Hamming(7,4) monitor: the
area overhead jumps to the 65--90 % range (parity storage for every
4-bit slice), power is 20--40 % above CRC-16, latency is unchanged.
"""

import pytest

from benchmarks.conftest import print_section
from repro.analysis import paper_data
from repro.analysis.tables import format_measured_vs_paper
from repro.analysis.tradeoff import (
    PAPER_CHAIN_SWEEP,
    table1_crc16,
    table2_hamming74,
)


@pytest.mark.benchmark(group="table2")
def test_table2_hamming74_sweep(benchmark, paper_fifo):
    reports = benchmark.pedantic(
        lambda: table2_hamming74(PAPER_CHAIN_SWEEP, circuit=paper_fifo),
        rounds=1, iterations=1)
    crc_reports = table1_crc16(PAPER_CHAIN_SWEEP, circuit=paper_fifo)

    rows = [r.as_table_row() for r in reports]

    # Geometry identical to the paper.
    for paper_row, row in zip(paper_data.TABLE2_HAMMING74, rows):
        assert row["W"] == paper_row["W"]
        assert row["l"] == paper_row["l"]
        assert row["latency_ns"] == pytest.approx(paper_row["latency_ns"])

    # Area overhead in the paper's 60-95 % band and increasing with W.
    overheads = [row["area_overhead_percent"] for row in rows]
    assert overheads == sorted(overheads)
    assert 55.0 < overheads[0] < 80.0
    assert 70.0 < overheads[-1] < 100.0

    # Hamming overhead dwarfs CRC overhead at every W; latency matches.
    for ham, crc in zip(rows, (r.as_table_row() for r in crc_reports)):
        assert ham["area_overhead_percent"] > 5 * crc["area_overhead_percent"]
        assert ham["latency_ns"] == pytest.approx(crc["latency_ns"])
        # Coding power 20-40 % above CRC (paper Section V); allow slack.
        ratio = ham["enc_power_mw"] / crc["enc_power_mw"]
        assert 1.1 < ratio < 1.6

    # Energy falls monotonically with W.
    energies = [row["enc_energy_nj"] for row in rows]
    assert energies == sorted(energies, reverse=True)

    print_section(
        "Table II -- Hamming(7,4) encode/decode cost vs scan-chain count",
        format_measured_vs_paper(reports, paper_data.TABLE2_HAMMING74))
