"""Benchmark E3: regenerate the paper's Table I (CRC-16 cost sweep).

32x32 FIFO, CRC-16 monitoring, W in {4, 8, 16, 40, 80}.  Columns: chain
length, area and overhead, encode/decode power, latency, encode/decode
energy.  The shape checks assert the trends the paper draws from the
table: latency and energy fall roughly as 1/W, area and power rise
mildly with W, and the absolute overhead stays in the single-digit
percent range.
"""

import pytest

from benchmarks.conftest import print_section
from repro.analysis import paper_data
from repro.analysis.tables import format_measured_vs_paper
from repro.analysis.tradeoff import PAPER_CHAIN_SWEEP, table1_crc16


@pytest.mark.benchmark(group="table1")
def test_table1_crc16_sweep(benchmark, paper_fifo):
    reports = benchmark.pedantic(
        lambda: table1_crc16(PAPER_CHAIN_SWEEP, circuit=paper_fifo),
        rounds=1, iterations=1)

    rows = [r.as_table_row() for r in reports]
    by_w = {row["W"]: row for row in rows}

    # Chain lengths match the paper exactly (pure geometry).
    for paper_row in paper_data.TABLE1_CRC16:
        assert by_w[paper_row["W"]]["l"] == paper_row["l"]
        assert by_w[paper_row["W"]]["latency_ns"] == pytest.approx(
            paper_row["latency_ns"])

    # Area overhead is small (single digits %) and increases with W.
    overheads = [row["area_overhead_percent"] for row in rows]
    assert overheads == sorted(overheads)
    assert overheads[-1] < 20.0

    # Power increases only mildly with W (the paper: 4.99 -> 5.14 mW).
    powers = [row["enc_power_mw"] for row in rows]
    assert max(powers) / min(powers) < 1.25

    # Energy decreases monotonically, by roughly the latency ratio.
    energies = [row["enc_energy_nj"] for row in rows]
    assert energies == sorted(energies, reverse=True)
    assert energies[0] / energies[-1] == pytest.approx(
        paper_data.TABLE1_CRC16[0]["enc_energy_nj"]
        / paper_data.TABLE1_CRC16[-1]["enc_energy_nj"], rel=0.25)

    print_section(
        "Table I -- CRC-16 encode/decode cost vs scan-chain count",
        format_measured_vs_paper(reports, paper_data.TABLE1_CRC16))
