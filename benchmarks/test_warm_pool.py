"""Benchmark E10: warm persistent pool vs cold per-job executors.

The campaign service's weak regime is many small jobs: a cold executor
pays pool spin-up, task shipping and full bench construction (design,
chains, monitor bank, engine workspaces) for every chunk of every job,
so on short campaigns the fixed costs dominate the actual simulation.
The warm :class:`~repro.campaigns.executors.PersistentProcessExecutor`
pays each of those once per worker *lifetime*: the pool survives across
``submit_jobs`` calls, tasks ship at most once per worker, and workers
memoize the seed-independent bench per task fingerprint, rebuilding
only the seed-dependent streams per chunk.

This benchmark pins the amortization on two regimes and records both as
the committed ``campaign_warm_pool`` section:

* **many small jobs** -- K back-to-back campaigns through one warm pool
  versus a fresh cold executor per job (the historical path).  This is
  the guarded headline (``warm_speedup_many_jobs``, floor 2x);
* **small-chunk single campaign** -- one campaign of deliberately tiny
  chunks, where the cold path rebuilds the bench per chunk.

Both sides are asserted bit-identical to the serial reference before
any timing is recorded -- a fast-but-wrong warm path must fail here,
not in a downstream statistics check.  The per-chunk setup-vs-compute
split reported through ``CampaignProgress`` is also checked: by the
final warm job the worker-state cache is hot, so its cumulative
``setup_seconds`` must be exactly zero.
"""

import time

import pytest

from benchmarks.conftest import bench_sequences, print_section, record_bench
from repro.campaigns.executors import PersistentProcessExecutor
from repro.campaigns.runner import ShardedCampaignRunner
from repro.campaigns.tasks import FIFOValidationCampaignTask


def _service_task():
    """The paper's 32x32/80-chain configuration on the simd engine --
    heavy seed-independent construction, vectorised per-chunk compute:
    exactly the balance the warm pool exists to amortize."""
    return FIFOValidationCampaignTask(
        width=32, depth=32, codes=("hamming(7,4)", "crc16"), num_chains=80,
        pattern="single", engine="simd", sampler="array", batch_size=8,
        words_per_sequence=8)


@pytest.mark.benchmark(group="campaign-warm-pool")
def test_warm_pool_amortization(benchmark):
    pytest.importorskip("numpy")
    task = _service_task()
    sequences = bench_sequences(64)
    chunk_size = min(8, sequences)
    num_jobs = 8
    seeds = [20100308 + job for job in range(num_jobs)]

    serial = {seed: ShardedCampaignRunner(task, sequences, seed=seed,
                                          chunk_size=chunk_size,
                                          executor="serial").run()
              for seed in seeds}

    # -- many small jobs: fresh cold executor per job (historical) ----
    start = time.perf_counter()
    for seed in seeds:
        result = ShardedCampaignRunner(task, sequences, seed=seed,
                                       chunk_size=chunk_size,
                                       executor="process").run()
        assert result == serial[seed]
    cold_jobs_s = time.perf_counter() - start

    # -- many small jobs: one warm pool serves every job --------------
    progress = {}
    start = time.perf_counter()
    with PersistentProcessExecutor(1) as pool:
        for seed in seeds:
            snapshots = []
            result = ShardedCampaignRunner(
                task, sequences, seed=seed, chunk_size=chunk_size,
                executor=pool,
                progress_callback=snapshots.append).run()
            assert result == serial[seed]
            progress[seed] = snapshots[-1]
    warm_jobs_s = time.perf_counter() - start
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # The amortization is observable through the timing split: the
    # first job pays the worker-state build once, the last job's
    # chunks are all served from the hot cache.
    first, last = progress[seeds[0]], progress[seeds[-1]]
    assert first.setup_seconds > 0.0
    assert last.setup_seconds == 0.0
    assert last.compute_seconds > 0.0

    # -- small-chunk single campaign ----------------------------------
    long_sequences = sequences * 2
    start = time.perf_counter()
    cold_long = ShardedCampaignRunner(task, long_sequences, seed=7,
                                      chunk_size=chunk_size,
                                      executor="process").run()
    cold_chunks_s = time.perf_counter() - start
    start = time.perf_counter()
    warm_long = ShardedCampaignRunner(task, long_sequences, seed=7,
                                      chunk_size=chunk_size,
                                      executor="process-warm").run()
    warm_chunks_s = time.perf_counter() - start
    assert warm_long == cold_long

    results = {
        "requires": ["numpy"],
        "num_jobs": num_jobs,
        "sequences_per_job": sequences,
        "chunk_size": chunk_size,
        "cold_jobs_s": cold_jobs_s,
        "warm_jobs_s": warm_jobs_s,
        "warm_speedup_many_jobs": cold_jobs_s / warm_jobs_s,
        "cold_small_chunks_s": cold_chunks_s,
        "warm_small_chunks_s": warm_chunks_s,
        "warm_speedup_small_chunks": cold_chunks_s / warm_chunks_s,
        "first_job_setup_s": first.setup_seconds,
        "last_job_setup_s": last.setup_seconds,
        "floors": {
            # One warm pool must beat per-job cold executors decisively
            # in the many-small-jobs regime (locally ~3.5x; the floor
            # is deliberately loose for noisy CI boxes).
            "warm_speedup_many_jobs": 2.0,
        },
    }
    path = record_bench("campaigns", results, section="campaign_warm_pool")

    print_section(
        f"Warm persistent pool ({num_jobs} jobs x {sequences} sequences, "
        f"chunk={chunk_size}, simd engine, 1 worker)",
        "\n".join([
            f"cold (fresh executor per job): {cold_jobs_s * 1e3:8.1f} ms",
            f"warm (one persistent pool)   : {warm_jobs_s * 1e3:8.1f} ms "
            f"({results['warm_speedup_many_jobs']:.2f}x)",
            f"cold small-chunk campaign    : {cold_chunks_s * 1e3:8.1f} ms",
            f"warm small-chunk campaign    : {warm_chunks_s * 1e3:8.1f} ms "
            f"({results['warm_speedup_small_chunks']:.2f}x)",
            f"first-job setup {first.setup_seconds * 1e3:.1f} ms -> "
            f"last-job setup {last.setup_seconds * 1e3:.1f} ms "
            f"(cache hot)",
            f"results written to {path}",
        ]))
