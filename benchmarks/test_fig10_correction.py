"""Benchmark E8: regenerate the paper's Fig. 10 (correction capability).

1000-flip-flop test sequences with 1--10 randomly injected errors,
decoded by Hamming (7,4), (15,11), (31,26) and (63,57).  The paper's
anchor points: Hamming(7,4) corrects 98.81 % of the bits at 2 errors and
94.14 % at 10; Hamming(63,57) corrects 88.65 % and 52.96 %.
"""

import pytest

from benchmarks.conftest import bench_sequences, print_section
from repro.analysis import paper_data
from repro.analysis.correction_capability import (
    analytic_correction_probability,
    fig10_curves,
)
from repro.analysis.tables import format_fig10_table
from repro.codes.hamming import HammingCode


@pytest.mark.benchmark(group="fig10")
def test_fig10_correction_capability(benchmark):
    sequences = bench_sequences(4000)
    curves = benchmark.pedantic(
        lambda: fig10_curves(error_counts=tuple(range(1, 11)),
                             num_bits=1000, sequences=sequences, seed=20100310),
        rounds=1, iterations=1)

    by_code = {code: {p.num_errors: p.corrected_percent for p in curve}
               for code, curve in curves.items()}

    # Every curve starts at 100 % (a single error is always corrected)
    # and decreases monotonically (within Monte-Carlo noise).
    for code, points in by_code.items():
        assert points[1] == pytest.approx(100.0)
        assert points[10] < points[2] + 1.0

    # Ordering at every error count: shorter codewords correct more.
    order = [(7, 4), (15, 11), (31, 26), (63, 57)]
    for errors in range(2, 11):
        rates = [by_code[code][errors] for code in order]
        assert all(a >= b - 1.5 for a, b in zip(rates, rates[1:]))

    # Paper anchor points, within Monte-Carlo tolerance.
    assert by_code[(7, 4)][2] == pytest.approx(
        paper_data.FIG10_REFERENCE[(7, 4)][2], abs=2.5)
    assert by_code[(7, 4)][10] == pytest.approx(
        paper_data.FIG10_REFERENCE[(7, 4)][10], abs=4.0)
    assert by_code[(63, 57)][10] == pytest.approx(
        paper_data.FIG10_REFERENCE[(63, 57)][10], abs=12.0)

    # Monte Carlo agrees with the closed-form expectation.
    for n, k in order:
        analytic = analytic_correction_probability(HammingCode(n, k),
                                                   1000, 10) * 100
        assert by_code[(n, k)][10] == pytest.approx(analytic, abs=4.0)

    print_section(
        f"Fig. 10 -- corrected errors vs injected errors "
        f"({sequences} sequences per point)",
        format_fig10_table(curves))
