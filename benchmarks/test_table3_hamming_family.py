"""Benchmark E5: regenerate the paper's Table III (Hamming code family).

Hamming (7,4), (15,11), (31,26) and (63,57) on the 32x32 FIFO, each with
the paper's chain count (a multiple of the code's data width).  The
trade-off the table demonstrates: lowering the code redundancy cuts the
area overhead (84.8 % down to 15.9 % in the paper) at the price of
correction capability (14.3 % down to 1.59 % of the bits per codeword).
"""

import pytest

from benchmarks.conftest import print_section
from repro.analysis import paper_data
from repro.analysis.tables import format_family_table
from repro.analysis.tradeoff import table3_hamming_family


@pytest.mark.benchmark(group="table3")
def test_table3_hamming_family(benchmark, paper_fifo):
    rows = benchmark.pedantic(
        lambda: table3_hamming_family(circuit=paper_fifo),
        rounds=1, iterations=1)

    # Correction capability column is exact (1/n).
    for row, paper_row in zip(rows, paper_data.TABLE3_HAMMING_FAMILY):
        assert (row.n, row.k) == (paper_row["n"], paper_row["k"])
        assert row.num_chains == paper_row["W"]
        assert row.correction_capability_percent == pytest.approx(
            paper_row["correction_capability_percent"], abs=0.05)

    # Overhead decreases monotonically with decreasing redundancy, as
    # does power; capability decreases alongside.
    overheads = [row.area_overhead_percent for row in rows]
    powers = [row.enc_power_mw for row in rows]
    capabilities = [row.correction_capability_percent for row in rows]
    assert overheads == sorted(overheads, reverse=True)
    assert capabilities == sorted(capabilities, reverse=True)
    assert powers[0] == max(powers)

    # The headline reduction: (63,57) costs several times less area
    # overhead than (7,4) (paper: 84.8 % -> 15.9 %).
    assert overheads[0] / overheads[-1] > 2.0

    print_section(
        "Table III -- Hamming family: area/power vs correction capability",
        format_family_table(rows, paper_data.TABLE3_HAMMING_FAMILY))
