"""Benchmarks E6/E7: regenerate both panels of the paper's Fig. 9.

Fig. 9(a): area overhead and coding power versus the number of scan
chains, for CRC-16 and Hamming(7,4).
Fig. 9(b): encode/decode latency and energy versus the number of scan
chains, for both codes.

The claims read off the figure in the paper:

* both codes share the same latency curve (latency depends only on the
  chain length);
* Hamming's area overhead sits far above CRC's at every W;
* Hamming's coding power and energy sit 20--40 % above CRC's;
* increasing W cuts latency and energy dramatically for a small rise in
  area and power.
"""

import pytest

from benchmarks.conftest import print_section
from repro.analysis.tradeoff import PAPER_CHAIN_SWEEP, fig9_series


def _format_series(series):
    lines = ["chains | code          | ovh %  | power mW | latency ns | energy nJ"]
    lines.append("-" * len(lines[0]))
    for code, data in series.items():
        for i, chains in enumerate(data["chains"]):
            lines.append(
                f"{int(chains):6d} | {code:13s} | {data['area_overhead_percent'][i]:6.1f} "
                f"| {data['coding_power_mw'][i]:8.2f} | {data['latency_ns'][i]:10.0f} "
                f"| {data['energy_nj'][i]:9.2f}")
    return "\n".join(lines)


@pytest.mark.benchmark(group="fig9")
def test_fig9a_area_and_power_series(benchmark, paper_fifo):
    series = benchmark.pedantic(
        lambda: fig9_series(PAPER_CHAIN_SWEEP, circuit=paper_fifo),
        rounds=1, iterations=1)
    crc = series["crc16"]
    ham = series["hamming(7,4)"]

    # Fig. 9(a): Hamming's overhead curve lies far above CRC's.
    for crc_ovh, ham_ovh in zip(crc["area_overhead_percent"],
                                ham["area_overhead_percent"]):
        assert ham_ovh > 5 * crc_ovh
    # Both overhead curves increase with W.
    assert crc["area_overhead_percent"] == sorted(
        crc["area_overhead_percent"])
    assert ham["area_overhead_percent"] == sorted(
        ham["area_overhead_percent"])
    # Power curves: Hamming 20-40 % above CRC, both nearly flat.
    for crc_p, ham_p in zip(crc["coding_power_mw"], ham["coding_power_mw"]):
        assert 1.1 < ham_p / crc_p < 1.6
    assert max(crc["coding_power_mw"]) / min(crc["coding_power_mw"]) < 1.25

    print_section("Fig. 9(a) -- area overhead and coding power vs W",
                  _format_series(series))


@pytest.mark.benchmark(group="fig9")
def test_fig9b_latency_and_energy_series(benchmark, paper_fifo):
    series = benchmark.pedantic(
        lambda: fig9_series(PAPER_CHAIN_SWEEP, circuit=paper_fifo),
        rounds=1, iterations=1)
    crc = series["crc16"]
    ham = series["hamming(7,4)"]

    # Fig. 9(b): the latency curves of the two codes coincide.
    assert crc["latency_ns"] == pytest.approx(ham["latency_ns"])
    # Latency scales as 1/W: 4 chains -> 2600 ns, 80 chains -> 130 ns.
    assert crc["latency_ns"][0] == pytest.approx(2600.0)
    assert crc["latency_ns"][-1] == pytest.approx(130.0)
    # Energy decreases by ~20x from W=4 to W=80 for both codes.
    for data in (crc, ham):
        assert data["energy_nj"] == sorted(data["energy_nj"], reverse=True)
        assert data["energy_nj"][0] / data["energy_nj"][-1] > 10
    # Hamming energy 20-40 % above CRC at every W.
    for crc_e, ham_e in zip(crc["energy_nj"], ham["energy_nj"]):
        assert 1.1 < ham_e / crc_e < 1.6

    print_section("Fig. 9(b) -- latency and energy vs W",
                  _format_series(series))
