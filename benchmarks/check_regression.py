"""CI benchmark regression guard.

Compares the freshly produced ``benchmarks/results/BENCH_<name>.json``
files against the *committed* reference copies at the repo root and
fails (exit code 1) when any metric drops below its committed floor.
Floors live next to the metrics they guard: every section of a bench
file may carry a ``"floors"`` sub-dict mapping metric names to the
minimum acceptable value.  The guard reads the floors from the
**committed** reference (so a regressed benchmark run cannot lower its
own bar) and the measured values from the **fresh** results.

Usage (from the repo root)::

    python benchmarks/check_regression.py engines fastpath

Each argument names one ``BENCH_<name>.json`` pair.  A fresh file or
section that is missing entirely also fails the guard -- a benchmark
silently not running is itself a regression.  The one sanctioned
exception: a committed section may declare ``"requires": ["numba",
...]``, naming the optional modules its benchmark needs; when such a
section is missing from the fresh results *and* one of those modules
is not importable here, the guard reports it as **skipped, not
regressed** (the benchmark could not have run on this install).  With
every requirement importable, a missing section still fails.

Alongside the pass/fail verdict, every guarded metric is compared
against the most recent entry of the committed ``BENCH_history.jsonl``
trajectory (appended by ``record_bench`` whenever the reference copies
are refreshed), and the relative delta is printed -- so a CI log shows
not just "above the floor" but *how the number moved* since the last
committed measurement.  Deltas are informational: machines differ, and
only the floors gate.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
FRESH_DIR = REPO_ROOT / "benchmarks" / "results"
HISTORY_PATH = REPO_ROOT / "BENCH_history.jsonl"


def load_history(name: str) -> dict:
    """Latest committed history metrics of one bench, keyed by
    ``(section, metric-path)``; the file is append-only, so later
    lines win."""
    latest: dict = {}
    if not HISTORY_PATH.exists():
        return latest
    for line in HISTORY_PATH.read_text("utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            continue
        if entry.get("bench") != name:
            continue
        recorded_at = entry.get("recorded_at", "")
        for metric, value in entry.get("metrics", {}).items():
            latest[(entry.get("section"), metric)] = (value, recorded_at)
    return latest


def format_delta(measured, history_entry) -> str:
    """A ``(+x% vs <timestamp>)`` annotation, or a no-history note.

    Tolerant by design: an empty history file, a missing entry or a
    non-numeric previous value all degrade to an informational note --
    deltas never gate and must never traceback.
    """
    if history_entry is None:
        return "no committed history"
    previous, recorded_at = history_entry
    if not isinstance(previous, (int, float)) or isinstance(previous, bool) \
            or not previous:
        return "no committed history"
    delta = (measured - previous) / previous * 100.0
    return f"{delta:+.1f}% vs {recorded_at}"


def load_results(path: Path, what: str):
    """The ``results`` tree of one BENCH json, or ``(None, message)``.

    Malformed JSON or a missing ``results`` key yields a clear failure
    string instead of a traceback -- a truncated or hand-edited bench
    file must fail the guard readably.
    """
    try:
        payload = json.loads(path.read_text("utf-8"))
    except (OSError, ValueError) as exc:
        return None, f"{what} {path} is unreadable ({exc})"
    results = payload.get("results") if isinstance(payload, dict) else None
    if not isinstance(results, dict):
        return None, (f"{what} {path} has no 'results' mapping -- "
                      f"was it written by record_bench?")
    return results, None


def iter_floors(results: dict, path=()):
    """Yield ``(section_path, metric, floor)`` for every floors entry
    found anywhere in a results tree."""
    floors = results.get("floors")
    if isinstance(floors, dict):
        for metric, floor in floors.items():
            yield path, metric, floor
    for key, value in results.items():
        if key != "floors" and isinstance(value, dict):
            yield from iter_floors(value, path + (key,))


def lookup(results: dict, path):
    node = results
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def missing_requirements(reference_section) -> list:
    """Modules a committed section's ``requires`` list names that are
    not importable here (empty when the section declares none, or all
    are present)."""
    import importlib.util

    if not isinstance(reference_section, dict):
        return []
    requires = reference_section.get("requires")
    if not isinstance(requires, (list, tuple)):
        return []
    missing = []
    for module in requires:
        if not isinstance(module, str):
            continue
        try:
            spec = importlib.util.find_spec(module)
        except (ImportError, ValueError):
            spec = None
        if spec is None:
            missing.append(module)
    return missing


def check_bench(name: str) -> list:
    """Check one BENCH pair; returns a list of failure strings."""
    reference_path = REPO_ROOT / f"BENCH_{name}.json"
    fresh_path = FRESH_DIR / f"BENCH_{name}.json"
    if not reference_path.exists():
        return [f"{name}: committed reference {reference_path} missing"]
    if not fresh_path.exists():
        return [f"{name}: fresh results {fresh_path} missing -- did the "
                f"benchmark run?"]
    reference, error = load_results(reference_path,
                                    f"{name}: committed reference")
    if error:
        return [error]
    fresh, error = load_results(fresh_path, f"{name}: fresh results")
    if error:
        return [error]
    history = load_history(name)

    failures = []
    checked = 0
    skipped = 0
    for path, metric, floor in iter_floors(reference):
        section = lookup(fresh, path)
        label = "/".join(path + (metric,))
        if not isinstance(floor, (int, float)) or isinstance(floor, bool):
            failures.append(
                f"{name}: {label} has a non-numeric committed floor "
                f"{floor!r}")
            continue
        if not isinstance(section, dict) or metric not in section:
            absent = missing_requirements(lookup(reference, path))
            if absent:
                skipped += 1
                print(f"SKIP {name}: {label} -- section requires "
                      f"{', '.join(absent)} (not importable here); "
                      f"skipped, not regressed")
                continue
            failures.append(
                f"{name}: {label} missing from the fresh results -- did "
                f"the benchmark that records it run?")
            continue
        measured = section[metric]
        checked += 1
        if not isinstance(measured, (int, float)) or measured < floor:
            failures.append(
                f"{name}: {label} = {measured} regressed below the "
                f"committed floor {floor}")
        else:
            # History entries key metrics relative to their section
            # (path[0]); deeper sections flatten the remaining path.
            metric_key = "/".join(path[1:] + (metric,)) if path else metric
            delta = format_delta(measured,
                                 history.get((path[0] if path else None,
                                              metric_key)))
            print(f"OK  {name}: {label} = {measured:.2f} "
                  f"(floor {floor}; {delta})")
    if not checked and not skipped and not failures:
        failures.append(
            f"{name}: the committed reference declares no floors -- "
            f"nothing to guard")
    return failures


def main(argv) -> int:
    names = argv or ["engines", "fastpath"]
    try:
        has_history = bool(HISTORY_PATH.read_text("utf-8").strip())
    except OSError:
        has_history = False
    if not has_history:
        print("note: committed BENCH_history.jsonl is missing or empty; "
              "deltas print as 'no committed history' (floors still "
              "gate)")
    failures = []
    for name in names:
        failures.extend(check_bench(name))
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
