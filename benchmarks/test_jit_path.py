"""Benchmark: the fused jit summary path vs the simd engine.

One guarded benchmark, recorded as the ``campaign_jit_path`` section
of ``BENCH_engines.json`` and enforced by the CI regression guard:

* **campaign_jit_path** -- end-to-end single-error campaign chunk on
  the paper's 32x32-FIFO configuration at batch 65536 (the regime
  where per-batch Python overhead vanishes and the summary pass is
  the whole story), ``engine="jit"`` against the simd engine's best
  path on the same workload (``"auto"`` resolves to sparse-delta at
  single-error density).  The fused kernels must hold >= 2x cycle
  throughput: the delta path still pays an argsort plus a dozen
  gather/reduceat passes over the flip coordinates per batch, while
  the kernel walks each sequence's CSR slice exactly once, in
  parallel.

The section carries ``"requires": ["numba"]``: the benchmark skips on
installs without numba (the engine is simply not registered), and the
regression guard then reports the committed floors as skipped, not
regressed.  Kernel warm-up (compile or ``cache=True`` load) happens
explicitly before any clock starts -- exactly what sharded campaign
workers get from engine construction.

Bit-exactness of the measured work is asserted inline (the full
property matrix lives in ``tests/engines/test_jit_equivalence.py``).
"""

import time
from dataclasses import replace

import pytest

from benchmarks.conftest import print_section, record_bench
from repro.engines.registry import available_engines, get_engine

#: The jit engine registers only when numba is importable (the [jit]
#: extra); without it the whole module skips and the regression guard
#: reports the committed campaign_jit_path floors as skipped.
JIT_AVAILABLE = "jit" in available_engines()
requires_jit = pytest.mark.skipif(
    not JIT_AVAILABLE,
    reason="numba not installed (the [jit] packaging extra)")

JIT_BATCH = 65536
JIT_SEQUENCES = 65536
JIT_FLOOR = 2.0


def _time(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _campaign_task(engine, summary_path="auto"):
    from repro.campaigns.tasks import FIFOValidationCampaignTask
    return FIFOValidationCampaignTask(
        width=32, depth=32, codes=("hamming(7,4)", "crc16"),
        num_chains=80, pattern="single", engine=engine,
        batch_size=JIT_BATCH, sampler="array",
        summary_path=summary_path)


@requires_jit
@pytest.mark.benchmark(group="engines")
def test_campaign_jit_path_throughput():
    """End-to-end single-error campaign chunk, fused jit kernels vs
    the simd engine, on the paper's 32x32-FIFO configuration at batch
    65536: the jit engine must hold >= 2x cycle throughput over the
    simd engine's own best path on this workload.
    """
    import numpy as np

    from repro.circuit.fifo import SyncFIFO
    from repro.core.protected import ProtectedDesign
    from repro.engines.jit import warm_up_kernels
    from repro.engines.packing import pack_chains
    from repro.faults.batch import sample_pattern_batch

    # Compile (or cache-load) outside every clock; returns True iff
    # numba is importable, which requires_jit already guaranteed.
    assert warm_up_kernels() is True

    simd_task = _campaign_task("simd")
    jit_task = replace(_campaign_task("jit"), summary_path="jit")

    # Bit-identity of the measured work: the jit and simd chunks agree
    # counter for counter on the same seeds.
    check_jit = jit_task.run_chunk(20100308, JIT_BATCH)
    check_simd = simd_task.run_chunk(20100308, JIT_BATCH)
    assert check_jit == check_simd, \
        "jit path diverged from the simd summary path"
    assert check_jit.stats.detection_rate() == 1.0
    assert check_jit.stats.correction_rate() == 1.0

    # The fused kernel really is the path taken -- asserted at the
    # engine level, where the chosen path is published.
    design = ProtectedDesign(SyncFIFO(32, 32, name="fifo32x32"),
                             codes=["hamming(7,4)", "crc16"],
                             num_chains=80, engine="jit")
    engine = get_engine("jit", design)
    sampled = sample_pattern_batch("single", design.num_chains,
                                   design.chain_length, 256,
                                   np.random.default_rng(1))
    engine.run_batch_summary(*pack_chains(design.chains), sampled, 256)
    assert engine.last_summary_path == "jit"

    times = {}
    for label, task in (("simd", simd_task), ("jit", jit_task)):
        task.run_chunk(20100308, JIT_BATCH)  # warm-up
        times[label] = _time(
            lambda task=task: task.run_chunk(20100308, JIT_SEQUENCES),
            repeats=2) / JIT_SEQUENCES

    speedup = times["simd"] / times["jit"]
    record_bench("engines", {
        "requires": ["numba"],
        "num_flops": 32 * 32 + 16,
        "num_chains": 80,
        "batch_size": JIT_BATCH,
        "num_sequences": JIT_SEQUENCES,
        "codes": ["hamming(7,4)", "crc16"],
        "pattern": "single",
        "engine": "jit",
        "cycle_seconds_per_sequence": {
            "simd_path": times["simd"],
            "jit_path": times["jit"],
        },
        "cycle_sequences_per_second": {
            "simd_path": 1.0 / times["simd"],
            "jit_path": 1.0 / times["jit"],
        },
        "jit_speedup_vs_simd": speedup,
        "floors": {
            "jit_speedup_vs_simd": JIT_FLOOR,
        },
    }, section="campaign_jit_path")

    print_section(
        "Engines -- end-to-end single-error campaign, fused jit vs "
        "simd summary path (32x32 FIFO, batch 65536)",
        f"simd summary path (auto: delta)    : "
        f"{times['simd'] * 1e6:9.2f} us per sequence\n"
        f"jit fused kernels (single pass)    : "
        f"{times['jit'] * 1e6:9.2f} us per sequence\n"
        f"jit / simd                         : {speedup:9.1f}x "
        f"(acceptance: >= {JIT_FLOOR:.0f}x)")
    assert speedup >= JIT_FLOOR
