"""Pytest path bootstrap.

Allows ``pytest`` to run straight from a source checkout (tests and
benchmarks import :mod:`repro` from ``src/``) even when the package has
not been installed into the environment.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
